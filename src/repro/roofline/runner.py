"""The two-phase roofline runner (the paper's Section 4.3 workflow).

Phase 1 (baseline): the program runs with instrumentation disabled; the
runtime records only begin/end timestamps per loop, so the measured cycles
are free of counting overhead.

Phase 2 (instrumented): the program runs again with instrumentation enabled;
the per-block counting calls accumulate bytes loaded/stored and integer/FP
operation counts (IR-derived, no PMU involvement).

The runner correlates the two executions per loop id and produces a
:class:`RooflinePoint` whose throughput uses phase-1 time and phase-2 counts,
plus the instrumentation-overhead figure the paper discusses in Section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.compiler.frontend import compile_source
from repro.compiler.ir.module import Module
from repro.compiler.ir.parser import parse_module
from repro.compiler.targets import target_for_platform
from repro.compiler.transforms import build_roofline_pipeline
from repro.platforms.descriptors import PlatformDescriptor
from repro.platforms.machine import Machine
from repro.roofline.machine import MachineRoofs, theoretical_roofs
from repro.roofline.model import RooflineModel, RooflinePoint
from repro.runtime import RooflineRuntime
from repro.vm import ExecutionEngine, Memory

#: Builds the argument list for one run; receives a fresh Memory every time.
ArgsBuilder = Callable[[Memory], Sequence[object]]


@dataclass
class LoopRooflineResult:
    """Per-loop correlation of the two phases."""

    loop_id: int
    label: str
    fp_ops: int
    int_ops: int
    loaded_bytes: int
    stored_bytes: int
    baseline_cycles: int
    instrumented_cycles: int

    @property
    def total_bytes(self) -> int:
        return self.loaded_bytes + self.stored_bytes

    @property
    def arithmetic_intensity(self) -> float:
        return self.fp_ops / self.total_bytes if self.total_bytes else 0.0

    @property
    def instrumentation_overhead(self) -> float:
        """instrumented / baseline cycle ratio (>= 1 in practice)."""
        if self.baseline_cycles == 0:
            return float("inf")
        return self.instrumented_cycles / self.baseline_cycles

    def gflops(self, frequency_hz: float) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        seconds = self.baseline_cycles / frequency_hz
        return self.fp_ops / seconds / 1e9

    def bandwidth_gbps(self, frequency_hz: float) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        seconds = self.baseline_cycles / frequency_hz
        return self.total_bytes / seconds / 1e9


@dataclass
class KernelRooflineResult:
    """Everything one roofline run produced for one kernel."""

    platform: str
    function: str
    roofs: MachineRoofs
    loops: List[LoopRooflineResult] = field(default_factory=list)
    baseline_machine_stats: Dict[str, object] = field(default_factory=dict)
    instrumented_machine_stats: Dict[str, object] = field(default_factory=dict)
    frequency_hz: float = 0.0
    #: Whole-kernel achieved GFLOP/s (all instrumented loops combined).
    kernel_gflops: float = 0.0
    kernel_arithmetic_intensity: float = 0.0

    def model(self) -> RooflineModel:
        model = RooflineModel(roofs=self.roofs)
        for loop in self.loops:
            model.add_point(RooflinePoint(
                name=loop.label,
                arithmetic_intensity=loop.arithmetic_intensity,
                gflops=loop.gflops(self.frequency_hz),
                fp_ops=loop.fp_ops,
                bytes_moved=loop.total_bytes,
                cycles=loop.baseline_cycles,
            ))
        return model

    def to_dict(self) -> Dict[str, object]:
        """Machine-consumable summary (``--json`` on the CLI)."""
        return {
            "platform": self.platform,
            "function": self.function,
            "frequency_hz": self.frequency_hz,
            "kernel_gflops": round(self.kernel_gflops, 6),
            "kernel_arithmetic_intensity": round(
                self.kernel_arithmetic_intensity, 6),
            "roofs": {
                "peak_gflops": self.roofs.peak_gflops,
                "bandwidth_gbps": dict(self.roofs.bandwidth_gbps),
                "source": self.roofs.source,
            },
            "loops": [
                {
                    "loop_id": loop.loop_id,
                    "label": loop.label,
                    "fp_ops": loop.fp_ops,
                    "int_ops": loop.int_ops,
                    "loaded_bytes": loop.loaded_bytes,
                    "stored_bytes": loop.stored_bytes,
                    "baseline_cycles": loop.baseline_cycles,
                    "instrumented_cycles": loop.instrumented_cycles,
                    "arithmetic_intensity": round(loop.arithmetic_intensity, 6),
                    "gflops": round(loop.gflops(self.frequency_hz), 6),
                    "instrumentation_overhead": (
                        None if loop.baseline_cycles == 0
                        else round(loop.instrumentation_overhead, 4)),
                }
                for loop in self.loops
            ],
        }

    def point_for_kernel(self) -> RooflinePoint:
        return RooflinePoint(
            name=self.function,
            arithmetic_intensity=self.kernel_arithmetic_intensity,
            gflops=self.kernel_gflops,
            fp_ops=sum(l.fp_ops for l in self.loops),
            bytes_moved=sum(l.total_bytes for l in self.loops),
            cycles=sum(l.baseline_cycles for l in self.loops),
        )


class RooflineRunner:
    """Coordinates compilation, the two executions and their correlation."""

    def __init__(self, descriptor: PlatformDescriptor,
                 roofs: Optional[MachineRoofs] = None,
                 vector_width: Optional[int] = None,
                 enable_vectorizer: bool = True,
                 instrument_first: bool = False,
                 vendor_driver: bool = True,
                 block_delta: bool = True,
                 fast_cache: bool = True):
        self.descriptor = descriptor
        self.roofs = roofs or theoretical_roofs(descriptor)
        self.vector_width = (
            vector_width if vector_width is not None else descriptor.vector.sp_lanes()
        )
        self.enable_vectorizer = enable_vectorizer
        self.instrument_first = instrument_first
        # The two-phase flow is hardware-agnostic (no PMU events are opened),
        # but the machines it builds should still model the configured kernel.
        self.vendor_driver = vendor_driver
        # Fast-path toggles for the machines/engines the runner builds
        # (bit-identical results; differential suites turn them off so the
        # roofline phases also run against the reference paths).
        self.block_delta = block_delta
        self.fast_cache = fast_cache

    # -- compilation -------------------------------------------------------------------------

    def compile(self, source: str, filename: str = "kernel.c") -> Module:
        module = compile_source(source, filename)
        pipeline = build_roofline_pipeline(
            vector_width=self.vector_width,
            enable_vectorizer=self.enable_vectorizer,
            instrument_first=self.instrument_first,
        )
        pipeline.run(module)
        return module

    # -- execution ----------------------------------------------------------------------------

    def _execute(self, module: Module, function: str, args_builder: ArgsBuilder,
                 instrumented: bool, repeats: int) -> (Machine, RooflineRuntime):
        machine = Machine(self.descriptor, vendor_driver=self.vendor_driver)
        machine.set_cache_fast_path(self.fast_cache)
        target = target_for_platform(self.descriptor)
        task = machine.create_task(function)
        runtime = RooflineRuntime(module, machine, instrumented=instrumented)
        for _ in range(repeats):
            memory = Memory()
            args = list(args_builder(memory))
            engine = ExecutionEngine(module, machine, target, task=task,
                                     memory=memory, external_handlers=[runtime],
                                     block_delta=self.block_delta)
            engine.run(function, args)
        return machine, runtime

    def run_module(self, module: Module, function: str, args_builder: ArgsBuilder,
                   repeats: int = 1) -> KernelRooflineResult:
        """Run the two phases on an already-compiled (instrumented) module."""
        baseline_machine, baseline_runtime = self._execute(
            module, function, args_builder, instrumented=False, repeats=repeats)
        instrumented_machine, instrumented_runtime = self._execute(
            module, function, args_builder, instrumented=True, repeats=repeats)

        result = KernelRooflineResult(
            platform=self.descriptor.name,
            function=function,
            roofs=self.roofs,
            frequency_hz=self.descriptor.core.frequency_hz,
            baseline_machine_stats=baseline_machine.stats(),
            instrumented_machine_stats=instrumented_machine.stats(),
        )

        loop_ids = sorted({r.loop_id for r in instrumented_runtime.records})
        total_fp = 0
        total_bytes = 0
        total_baseline_cycles = 0
        for loop_id in loop_ids:
            instrumented_record = instrumented_runtime.merged_record(loop_id)
            baseline_record = baseline_runtime.merged_record(loop_id)
            if instrumented_record is None:
                continue
            baseline_cycles = baseline_record.cycles if baseline_record else 0
            label = instrumented_record.label()
            loop_result = LoopRooflineResult(
                loop_id=loop_id,
                label=label,
                fp_ops=instrumented_record.fp_ops,
                int_ops=instrumented_record.int_ops,
                loaded_bytes=instrumented_record.loaded_bytes,
                stored_bytes=instrumented_record.stored_bytes,
                baseline_cycles=baseline_cycles,
                instrumented_cycles=instrumented_record.cycles,
            )
            result.loops.append(loop_result)
            total_fp += loop_result.fp_ops
            total_bytes += loop_result.total_bytes
            total_baseline_cycles += baseline_cycles

        if total_baseline_cycles and total_fp:
            seconds = total_baseline_cycles / self.descriptor.core.frequency_hz
            result.kernel_gflops = total_fp / seconds / 1e9
        if total_bytes:
            result.kernel_arithmetic_intensity = total_fp / total_bytes
        return result

    def run_source(self, source: str, function: str, args_builder: ArgsBuilder,
                   repeats: int = 1, filename: str = "kernel.c",
                   vector_width: Optional[int] = None) -> KernelRooflineResult:
        """Compile KernelC source and run the two-phase flow."""
        if vector_width is not None:
            self.vector_width = vector_width
        module = self.compile(source, filename)
        return self.run_module(module, function, args_builder, repeats=repeats)

    def run_ir(self, ir_text: str, function: str, args_builder: ArgsBuilder,
               repeats: int = 1) -> KernelRooflineResult:
        """Same flow, but starting from textual IR instead of KernelC."""
        module = parse_module(ir_text)
        pipeline = build_roofline_pipeline(
            vector_width=self.vector_width,
            enable_vectorizer=self.enable_vectorizer,
            instrument_first=self.instrument_first,
        )
        pipeline.run(module)
        return self.run_module(module, function, args_builder, repeats=repeats)
