"""The fault-injection runtime: deterministic decisions, counted in telemetry.

The active :class:`~repro.faults.plan.FaultPlan` comes from the
``REPRO_FAULTS`` environment variable, parsed lazily on first use and
cached per process -- pool workers inherit the variable (and, under fork,
the parsed state) so a single spec drives the whole tree.  Tests install a
plan directly with :func:`install` and drop back to the environment with
:func:`reset`.

Determinism is the whole point.  Each fault point owns a
``random.Random(seed)`` stream and an evaluation counter; the decision
sequence for a point depends only on its clause, never on wall clock,
PIDs, or interleaving with other points.  Running the same workload under
the same spec injects the same faults at the same sites, which is what
lets the chaos suite diff a faulty run against a fault-free golden
byte-for-byte.

Every injection increments ``repro_faults_injected_total{point}`` in the
process-wide telemetry registry; worker-side injections ride back to the
daemon with the rest of the shipped telemetry deltas.
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, Optional, Union

from repro import telemetry as _telemetry
from repro.faults.plan import FaultPlan, FaultSpec


class InjectedFault(RuntimeError):
    """Raised by fail-type fault points (e.g. ``compiler.compile_fail``)."""

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point}")
        self.point = point


def _count(point: str) -> None:
    _telemetry.REGISTRY.counter(
        "repro_faults_injected_total",
        "Faults injected by repro.faults, labelled by fault point.",
    ).inc(point=point)


class _PointState:
    """Mutable per-point decision state: seeded stream plus counters."""

    __slots__ = ("spec", "rng", "evaluations", "injections")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.evaluations = 0
        self.injections = 0

    def fire(self) -> bool:
        spec = self.spec
        if spec.times is not None and self.injections >= spec.times:
            return False
        self.evaluations += 1
        if spec.rate is not None:
            hit = self.rng.random() < spec.rate
        elif spec.every is not None:
            hit = self.evaluations % spec.every == 0
        else:
            hit = True
        if hit:
            self.injections += 1
        return hit


class FaultInjector:
    """Evaluates fault points against a plan and mutates bytes on demand."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._points: Dict[str, _PointState] = {
            spec.point: _PointState(spec) for spec in plan.specs}

    def fire(self, point: str) -> bool:
        state = self._points.get(point)
        if state is None or not state.fire():
            return False
        _count(point)
        return True

    def spec_for(self, point: str) -> Optional[FaultSpec]:
        state = self._points.get(point)
        return None if state is None else state.spec

    def corrupt_bytes(self, point: str, data: bytes) -> bytes:
        """Flip one deterministically-chosen bit of ``data``."""
        if not data:
            return data
        state = self._points[point]
        position = state.rng.randrange(len(data) * 8)
        mutated = bytearray(data)
        mutated[position // 8] ^= 1 << (position % 8)
        return bytes(mutated)

    def truncate_bytes(self, point: str, data: bytes) -> bytes:
        """Cut ``data`` at a deterministically-chosen earlier offset."""
        if len(data) < 2:
            return b""
        state = self._points[point]
        return data[:state.rng.randrange(1, len(data))]

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {point: {"evaluations": state.evaluations,
                        "injections": state.injections}
                for point, state in sorted(self._points.items())}


_ENV_VAR = "REPRO_FAULTS"
_UNSET = object()
_INJECTOR: Union[object, Optional[FaultInjector]] = _UNSET


def active() -> Optional[FaultInjector]:
    """The process-wide injector, or ``None`` when no plan is configured.

    A malformed ``REPRO_FAULTS`` raises ``ValueError`` here, at the first
    fault-point evaluation -- loudly, rather than running with no faults.
    """
    global _INJECTOR
    if _INJECTOR is _UNSET:
        text = os.environ.get(_ENV_VAR, "").strip()
        plan = FaultPlan.parse(text) if text else None
        _INJECTOR = FaultInjector(plan) if plan else None
    return _INJECTOR  # type: ignore[return-value]


def install(plan: Union[FaultPlan, str, None]) -> Optional[FaultInjector]:
    """Force a plan for this process (tests); ``None`` disables injection."""
    global _INJECTOR
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _INJECTOR = FaultInjector(plan) if plan else None
    return _INJECTOR  # type: ignore[return-value]


def reset() -> None:
    """Drop the cached injector; the next evaluation re-reads the env."""
    global _INJECTOR
    _INJECTOR = _UNSET


def fires(point: str) -> bool:
    """True when ``point`` should inject right now.  Counts the injection."""
    injector = active()
    return injector is not None and injector.fire(point)


def corrupt(point: str, data: bytes) -> bytes:
    """Return ``data`` with one bit flipped when ``point`` fires."""
    injector = active()
    if injector is None or not injector.fire(point):
        return data
    return injector.corrupt_bytes(point, data)


def truncate(point: str, data: bytes) -> bytes:
    """Return a truncated prefix of ``data`` when ``point`` fires."""
    injector = active()
    if injector is None or not injector.fire(point):
        return data
    return injector.truncate_bytes(point, data)


def delay(point: str) -> float:
    """Sleep the clause's ``ms`` when ``point`` fires; returns the delay."""
    injector = active()
    if injector is None or not injector.fire(point):
        return 0.0
    spec = injector.spec_for(point)
    seconds = (spec.ms if spec is not None else 25.0) / 1000.0
    if seconds > 0:
        time.sleep(seconds)
    return seconds


def fail(point: str) -> None:
    """Raise :class:`InjectedFault` when ``point`` fires."""
    if fires(point):
        raise InjectedFault(point)
