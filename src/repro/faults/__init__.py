"""Deterministic, seeded fault injection for chaos testing the stack.

Configure with the ``REPRO_FAULTS`` environment variable (see
:mod:`repro.faults.plan` for the grammar), or programmatically with
:func:`install`.  Call sites stay cheap: with no plan configured every
helper is a constant-time no-op.

The contract the chaos suite enforces: injected faults may cost latency
or availability (a retry, a 503, a re-execution), but never correctness
-- any payload that is actually served must be byte-identical to the
fault-free run.  Corruption points therefore mutate bytes *inside* the
disk-store envelope, where the integrity check turns them into cache
misses, and crash points kill workers whose requests are idempotent by
content-addressing.
"""

from repro.faults.inject import (
    FaultInjector,
    InjectedFault,
    active,
    corrupt,
    delay,
    fail,
    fires,
    install,
    reset,
    truncate,
)
from repro.faults.plan import FAULT_POINTS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_POINTS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active",
    "corrupt",
    "delay",
    "fail",
    "fires",
    "install",
    "reset",
    "truncate",
]
