"""Parsing for the ``REPRO_FAULTS`` fault-injection spec.

A spec is a ``;``-separated list of clauses, one per fault point::

    store.read_corrupt:rate=0.5:seed=7;pool.worker_crash:every=3

Each clause names a registered fault point followed by ``key=value``
settings.  Exactly one trigger may be given -- ``rate`` (a probability in
``(0, 1]`` drawn from a seeded ``random.Random``) or ``every`` (fire on
every Nth evaluation of the point); a clause with neither fires on every
evaluation.  ``seed`` fixes the per-point generator (default 0), ``ms``
sets the injected latency for the slow/stall points (default 25 ms), and
``times`` caps how many injections the point may perform before going
quiet.  Two clauses for the same point are an error: a spec must read
unambiguously.

Parsing is strict on purpose.  A typo'd point name or a malformed value
raises ``ValueError`` at the first injection site instead of silently
running a chaos experiment with no chaos in it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Every fault point the runtime knows how to trigger, with the behavior a
#: matching clause buys.  ``repro.faults`` rejects any other name.
FAULT_POINTS: Dict[str, str] = {
    "executor.worker_crash":
        "kill a run_many pool worker mid-request (os._exit)",
    "executor.slow_worker":
        "sleep inside execute_request before the run starts",
    "pool.worker_crash":
        "kill a service pool worker mid-request (os._exit; the inline "
        "workers=0 pool raises WorkerCrash instead)",
    "pool.slow_worker":
        "sleep inside a service pool request body",
    "store.read_corrupt":
        "flip one bit of a disk-cache entry after reading it",
    "store.write_corrupt":
        "flip one bit of a disk-cache entry as it is written",
    "store.partial_write":
        "truncate a disk-cache entry as it is written",
    "compiler.compile_fail":
        "raise InjectedFault instead of compiling a kernel",
    "daemon.conn_drop":
        "close the HTTP connection without writing a response",
    "daemon.stall_response":
        "sleep before writing the HTTP response",
}

_KNOWN_KEYS = ("rate", "every", "seed", "ms", "times")


@dataclass(frozen=True)
class FaultSpec:
    """One parsed clause: a fault point plus its trigger and knobs."""

    point: str
    rate: Optional[float] = None
    every: Optional[int] = None
    seed: int = 0
    ms: float = 25.0
    times: Optional[int] = None

    def describe(self) -> str:
        trigger = (f"rate={self.rate}" if self.rate is not None
                   else f"every={self.every}" if self.every is not None
                   else "always")
        return f"{self.point}[{trigger} seed={self.seed}]"


def _parse_clause(clause: str) -> FaultSpec:
    parts = [part.strip() for part in clause.split(":")]
    point = parts[0]
    if point not in FAULT_POINTS:
        known = ", ".join(sorted(FAULT_POINTS))
        raise ValueError(f"unknown fault point {point!r} (known: {known})")
    settings: Dict[str, str] = {}
    for part in parts[1:]:
        if not part:
            continue
        name, separator, value = part.partition("=")
        name = name.strip()
        if not separator or name not in _KNOWN_KEYS:
            raise ValueError(
                f"bad fault setting {part!r} for {point!r} "
                f"(expected one of {', '.join(_KNOWN_KEYS)} as key=value)")
        if name in settings:
            raise ValueError(f"duplicate fault setting {name!r} for {point!r}")
        settings[name] = value.strip()
    if "rate" in settings and "every" in settings:
        raise ValueError(
            f"fault point {point!r} gives both rate= and every=; pick one")

    rate = every = times = None
    try:
        if "rate" in settings:
            rate = float(settings["rate"])
        if "every" in settings:
            every = int(settings["every"])
        if "times" in settings:
            times = int(settings["times"])
        seed = int(settings.get("seed", "0"))
        ms = float(settings.get("ms", "25"))
    except ValueError as error:
        raise ValueError(
            f"malformed fault setting for {point!r}: {error}") from None
    if rate is not None and not 0.0 < rate <= 1.0:
        raise ValueError(f"fault rate for {point!r} must be in (0, 1], "
                         f"got {rate}")
    if every is not None and every < 1:
        raise ValueError(f"fault every= for {point!r} must be >= 1, "
                         f"got {every}")
    if times is not None and times < 1:
        raise ValueError(f"fault times= for {point!r} must be >= 1, "
                         f"got {times}")
    if ms < 0:
        raise ValueError(f"fault ms= for {point!r} must be >= 0, got {ms}")
    return FaultSpec(point=point, rate=rate, every=every, seed=seed,
                     ms=ms, times=times)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated set of clauses keyed by fault point."""

    specs: Tuple[FaultSpec, ...]

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs = []
        seen = set()
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            spec = _parse_clause(clause)
            if spec.point in seen:
                raise ValueError(
                    f"fault point {spec.point!r} appears twice in the spec")
            seen.add(spec.point)
            specs.append(spec)
        return cls(specs=tuple(specs))

    def spec_for(self, point: str) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.point == point:
                return spec
        return None

    def __bool__(self) -> bool:
        return bool(self.specs)
