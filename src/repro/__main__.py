"""``python -m repro``: the same CLI the ``repro`` console script exposes."""

import sys

from repro.toolchain.cli import main

if __name__ == "__main__":
    sys.exit(main())
