"""Target selection helpers."""

from __future__ import annotations

from repro.compiler.targets.base import TargetLowering
from repro.compiler.targets.riscv import RV64GCTarget, RV64GCVTarget
from repro.compiler.targets.x86 import X86AVX2Target, X86ScalarTarget
from repro.platforms.descriptors import PlatformDescriptor

_BY_NAME = {
    "rv64gc": RV64GCTarget,
    "rv64gcv": RV64GCVTarget,
    "x86-64": X86ScalarTarget,
    "x86-64-v3": X86AVX2Target,
    "avx2": X86AVX2Target,
}


def target_by_name(name: str) -> TargetLowering:
    """Build a target lowering from a ``-march``-style string."""
    key = name.lower()
    if key in _BY_NAME:
        return _BY_NAME[key]()
    if key.startswith("rv64") and "v" in key[4:]:
        return RV64GCVTarget()
    if key.startswith("rv64"):
        return RV64GCTarget()
    if key.startswith("x86"):
        return X86AVX2Target()
    raise KeyError(f"unknown target {name!r}; known: {', '.join(sorted(_BY_NAME))}")


#: Shared target-lowering instances, one per distinct lowering
#: configuration.  Lowerings are pure functions of the instruction (plus
#: taken/vector-width), so sharing an instance is safe -- and it shares the
#: ``lower_cached`` memo across every engine, thread and hart that lowers
#: for the same platform, which is what keeps the fast-dispatch SMP path
#: from re-lowering the same kernel once per hart.
_PLATFORM_TARGETS: dict = {}


def target_for_platform(descriptor: PlatformDescriptor) -> TargetLowering:
    """The (shared, memoized) lowering the paper's build flags imply."""
    key = (descriptor.arch, descriptor.vector.supported,
           descriptor.vector.vlen_bits)
    target = _PLATFORM_TARGETS.get(key)
    if target is None:
        if descriptor.arch == "x86_64":
            target = (X86AVX2Target() if descriptor.vector.supported
                      else X86ScalarTarget())
        elif descriptor.vector.supported:
            target = RV64GCVTarget(vlen_bits=descriptor.vector.vlen_bits)
        else:
            target = RV64GCTarget()
        _PLATFORM_TARGETS[key] = target
    return target
