"""Target lowerings: how IR operations become machine operations.

The execution engine interprets IR for its *semantics* and asks a target
lowering what the operation costs on a given ISA: how many machine ops, of
what class, over how many vector lanes.  This is where ``-march=rv64gcv``
versus ``-mavx2`` (the paper's Section 5.2 build flags) becomes a modelling
difference.
"""

from repro.compiler.targets.base import TargetLowering
from repro.compiler.targets.riscv import RV64GCTarget, RV64GCVTarget
from repro.compiler.targets.x86 import X86AVX2Target, X86ScalarTarget
from repro.compiler.targets.registry import target_for_platform, target_by_name

__all__ = [
    "TargetLowering",
    "RV64GCTarget",
    "RV64GCVTarget",
    "X86AVX2Target",
    "X86ScalarTarget",
    "target_for_platform",
    "target_by_name",
]
