"""The target-lowering interface and shared lowering logic."""

from __future__ import annotations

import weakref
from typing import List, Optional, Tuple

from repro.compiler.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    GetElementPtr,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.isa.machine_ops import MachineOp, OpClass

#: IR binary opcodes -> scalar machine op class.
_INT_OPCLASS = {
    "add": OpClass.INT_ALU, "sub": OpClass.INT_ALU, "and": OpClass.INT_ALU,
    "or": OpClass.INT_ALU, "xor": OpClass.INT_ALU, "shl": OpClass.INT_ALU,
    "lshr": OpClass.INT_ALU, "ashr": OpClass.INT_ALU,
    "mul": OpClass.INT_MUL,
    "sdiv": OpClass.INT_DIV, "udiv": OpClass.INT_DIV,
    "srem": OpClass.INT_DIV, "urem": OpClass.INT_DIV,
}
_FP_OPCLASS = {
    "fadd": OpClass.FP_ADD, "fsub": OpClass.FP_ADD,
    "fmul": OpClass.FP_MUL,
    "fdiv": OpClass.FP_DIV, "frem": OpClass.FP_DIV,
}
_FP_TO_VECTOR = {
    OpClass.FP_ADD: OpClass.VECTOR_FP,
    OpClass.FP_MUL: OpClass.VECTOR_FP,
    OpClass.FP_FMA: OpClass.VECTOR_FMA,
    OpClass.FP_DIV: OpClass.VECTOR_FP,
}


class TargetLowering:
    """Maps one executed IR instruction to the machine ops it retires.

    Parameters that differ across concrete targets:

    * ``name`` / ``march`` -- identification (``rv64gcv``, ``x86-64-v3``...);
    * ``vector_sp_lanes`` -- single-precision lanes per vector instruction;
    * ``supports_vector`` -- whether vector annotations are honoured at all
      (a ``rv64gc`` build ignores them, modelling a scalar-only compile);
    * ``address_gen_ops`` -- how many integer ops a ``getelementptr`` costs
      (x86 folds simple address arithmetic into the memory operand; RISC-V
      needs explicit shifts/adds);
    * ``call_overhead_ops`` -- extra ALU work per call for argument setup.
    """

    name = "generic"
    march = "generic"
    vector_sp_lanes = 1
    supports_vector = False
    address_gen_ops = 1
    call_overhead_ops = 1

    def __init__(self) -> None:
        # Memoized lowering results for the execution engine's fast dispatch,
        # keyed weakly by instruction so a long-lived target does not pin
        # modules (and so a recycled object id can never alias a stale entry).
        self._lower_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    # -- main entry --------------------------------------------------------------------

    def lower(self, inst: Instruction, address: Optional[int] = None,
              taken: bool = False, pc: int = 0,
              vector_width: int = 0) -> List[MachineOp]:
        """Machine ops retired by one dynamic execution of *inst*.

        ``vector_width`` > 1 signals that the instruction belongs to a
        vectorised loop body and that this execution closes a group of
        ``vector_width`` iterations (the engine calls with 0 for the
        intermediate iterations, and drops the result entirely for targets
        without vector support).
        """
        if isinstance(inst, BinaryOp):
            return self._lower_binary(inst, pc, vector_width)
        if isinstance(inst, CompareOp):
            opclass = OpClass.INT_ALU if inst.opcode == "icmp" else OpClass.FP_MISC
            return [MachineOp(opclass, pc=pc)]
        if isinstance(inst, Load):
            if inst.metadata.get("mperf.reg_promoted"):
                return []  # register read in the modelled -O3 build
            return self._lower_memory(inst.loaded_bytes, False, address, pc, vector_width)
        if isinstance(inst, Store):
            if inst.metadata.get("mperf.reg_promoted"):
                return []  # register write in the modelled -O3 build
            return self._lower_memory(inst.stored_bytes, True, address, pc, vector_width)
        if isinstance(inst, GetElementPtr):
            return [MachineOp(OpClass.INT_ALU, pc=pc)] * self.address_gen_ops
        if isinstance(inst, Alloca):
            return [MachineOp(OpClass.INT_ALU, pc=pc)]
        if isinstance(inst, Branch):
            # The predictor-indexing target is derived from the branch's pc,
            # never from id(): object addresses differ between processes and
            # would make predictor aliasing (and therefore every cycle count)
            # irreproducible across runs of the same program.
            return [MachineOp(OpClass.BRANCH, taken=taken,
                              target=(pc >> 2) & 0xFFFF, pc=pc)]
        if isinstance(inst, Jump):
            return [MachineOp(OpClass.JUMP, taken=True, pc=pc)]
        if isinstance(inst, Ret):
            return [MachineOp(OpClass.RET, taken=True, pc=pc)]
        if isinstance(inst, Call):
            ops = [MachineOp(OpClass.INT_ALU, pc=pc)] * self.call_overhead_ops
            ops.append(MachineOp(OpClass.CALL, taken=True, pc=pc))
            return ops
        if isinstance(inst, Cast):
            if inst.opcode in ("sitofp", "fptosi", "fpext", "fptrunc"):
                return [MachineOp(OpClass.FP_MISC, pc=pc)]
            if inst.opcode == "bitcast":
                return []
            return [MachineOp(OpClass.INT_ALU, pc=pc)]
        if isinstance(inst, (Phi, Select)):
            return [MachineOp(OpClass.INT_ALU, pc=pc)] if isinstance(inst, Select) else []
        return [MachineOp(OpClass.NOP, pc=pc)]

    def lower_cached(self, inst: Instruction, taken: bool = False, pc: int = 0,
                     vector_width: int = 0) -> Tuple[MachineOp, ...]:
        """Memoized :meth:`lower` for the engine's predecode phase.

        The result is cached per ``(instruction, taken, vector_width)``;
        memory instructions are lowered with ``address=None`` and the engine
        patches the effective address into the cached template per execution.
        Lowerings must therefore be pure functions of those keys, which every
        built-in target satisfies.
        """
        per_inst = self._lower_cache.get(inst)
        if per_inst is None:
            per_inst = {}
            self._lower_cache[inst] = per_inst
        key = (taken, vector_width)
        ops = per_inst.get(key)
        if ops is None:
            ops = tuple(self.lower(inst, address=None, taken=taken, pc=pc,
                                   vector_width=vector_width))
            per_inst[key] = ops
        return ops

    # -- pieces -------------------------------------------------------------------------

    def _lower_binary(self, inst: BinaryOp, pc: int, vector_width: int) -> List[MachineOp]:
        if inst.is_float_op:
            scalar_class = _FP_OPCLASS[inst.opcode]
            if vector_width > 1 and self.supports_vector:
                lanes = min(vector_width, self.vector_sp_lanes)
                return [MachineOp(_FP_TO_VECTOR[scalar_class], lanes=lanes, pc=pc)]
            return [MachineOp(scalar_class, pc=pc)]
        scalar_class = _INT_OPCLASS[inst.opcode]
        if vector_width > 1 and self.supports_vector:
            lanes = min(vector_width, self.vector_sp_lanes)
            return [MachineOp(OpClass.VECTOR_ALU, lanes=lanes, pc=pc)]
        return [MachineOp(scalar_class, pc=pc)]

    def _lower_memory(self, size_bytes: int, is_store: bool, address: Optional[int],
                      pc: int, vector_width: int) -> List[MachineOp]:
        if vector_width > 1 and self.supports_vector:
            lanes = min(vector_width, self.vector_sp_lanes)
            opclass = OpClass.VECTOR_STORE if is_store else OpClass.VECTOR_LOAD
            return [MachineOp(opclass, size_bytes=size_bytes * lanes, lanes=lanes,
                              address=address, pc=pc)]
        opclass = OpClass.STORE if is_store else OpClass.LOAD
        return [MachineOp(opclass, size_bytes=size_bytes, address=address, pc=pc)]

    # -- identification -----------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"{type(self).__name__}(march={self.march!r})"
