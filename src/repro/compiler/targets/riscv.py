"""RISC-V target lowerings."""

from __future__ import annotations

from repro.compiler.targets.base import TargetLowering


class RV64GCTarget(TargetLowering):
    """Scalar RV64GC: no vector unit (the SiFive U74 build).

    Address generation needs explicit shift+add instructions, and vector
    annotations are ignored -- every operation retires as a scalar op.
    """

    name = "riscv64-rv64gc"
    march = "rv64gc"
    vector_sp_lanes = 1
    supports_vector = False
    address_gen_ops = 2
    call_overhead_ops = 2


class RV64GCVTarget(TargetLowering):
    """RV64GCV: RVV 1.0 with a configurable VLEN (the SpacemiT X60 build).

    The paper compiles with ``-march=rv64gcv``; with a 256-bit VLEN and
    32-bit elements a vector instruction covers 8 single-precision lanes.
    """

    name = "riscv64-rv64gcv"
    march = "rv64gcv"
    supports_vector = True
    address_gen_ops = 2
    call_overhead_ops = 2

    def __init__(self, vlen_bits: int = 256):
        super().__init__()
        if vlen_bits <= 0 or vlen_bits % 32 != 0:
            raise ValueError("vlen_bits must be a positive multiple of 32")
        self.vlen_bits = vlen_bits
        self.vector_sp_lanes = vlen_bits // 32
