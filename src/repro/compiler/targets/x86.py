"""x86-64 target lowerings (the paper's comparator platform)."""

from __future__ import annotations

from repro.compiler.targets.base import TargetLowering


class X86ScalarTarget(TargetLowering):
    """x86-64 without vector extensions enabled (``-mno-sse``-ish baseline)."""

    name = "x86_64-scalar"
    march = "x86-64"
    vector_sp_lanes = 1
    supports_vector = False
    # Complex addressing modes fold the address arithmetic into the memory op.
    address_gen_ops = 0
    call_overhead_ops = 1


class X86AVX2Target(TargetLowering):
    """x86-64 with AVX2 (``-mavx2``): 256-bit vectors, folded addressing."""

    name = "x86_64-avx2"
    march = "x86-64-v3"
    vector_sp_lanes = 8
    supports_vector = True
    address_gen_ops = 0
    call_overhead_ops = 1
