"""Frontend driver: source text in, verified IR module out."""

from __future__ import annotations

from typing import Optional

from repro.compiler.frontend.codegen import CodeGenerator
from repro.compiler.frontend.parser import Parser
from repro.compiler.frontend.sema import SemanticAnalyzer
from repro.compiler.ir.module import Module
from repro.compiler.ir.verifier import verify_module


def compile_source(source: str, filename: str = "<source>",
                   module_name: Optional[str] = None,
                   verify: bool = True) -> Module:
    """Compile KernelC *source* into a verified IR module.

    Parameters
    ----------
    source:
        The program text.
    filename:
        Used in diagnostics and attached to instructions as source locations
        (and therefore visible in roofline reports).
    module_name:
        Name of the resulting module (defaults to *filename*).
    verify:
        Run the IR verifier on the result (on by default; switching it off is
        only useful when measuring compilation overhead in benchmarks).
    """
    unit = Parser(source, filename).parse()
    SemanticAnalyzer(unit).analyze()
    module = CodeGenerator(unit, module_name or filename).generate()
    if verify:
        verify_module(module)
    return module
