"""KernelC abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    """Base class; every node carries its source position."""

    line: int = 0
    column: int = 0


# -- types (syntactic) -------------------------------------------------------------


@dataclass
class TypeName(Node):
    """A type as written in source: base name plus pointer depth."""

    name: str = "int"
    pointer_depth: int = 0

    def __str__(self) -> str:
        return self.name + "*" * self.pointer_depth


# -- expressions --------------------------------------------------------------------


@dataclass
class Expression(Node):
    pass


@dataclass
class IntLiteral(Expression):
    value: int = 0


@dataclass
class FloatLiteral(Expression):
    value: float = 0.0
    is_double: bool = False


@dataclass
class Identifier(Expression):
    name: str = ""


@dataclass
class BinaryExpr(Expression):
    op: str = "+"
    lhs: Optional[Expression] = None
    rhs: Optional[Expression] = None


@dataclass
class UnaryExpr(Expression):
    op: str = "-"
    operand: Optional[Expression] = None


@dataclass
class IndexExpr(Expression):
    """Array subscription ``base[index]``."""

    base: Optional[Expression] = None
    index: Optional[Expression] = None


@dataclass
class CallExpr(Expression):
    callee: str = ""
    args: List[Expression] = field(default_factory=list)


@dataclass
class CastExpr(Expression):
    target_type: Optional[TypeName] = None
    operand: Optional[Expression] = None


# -- statements ------------------------------------------------------------------------


@dataclass
class Statement(Node):
    pass


@dataclass
class Block(Statement):
    statements: List[Statement] = field(default_factory=list)


@dataclass
class Declaration(Statement):
    type_name: Optional[TypeName] = None
    name: str = ""
    initializer: Optional[Expression] = None


@dataclass
class Assignment(Statement):
    """``target op target_expr`` where op is '=', '+=', '-=', '*=', '/='."""

    target: Optional[Expression] = None        # Identifier or IndexExpr
    op: str = "="
    value: Optional[Expression] = None


@dataclass
class ExpressionStatement(Statement):
    expression: Optional[Expression] = None


@dataclass
class IfStatement(Statement):
    condition: Optional[Expression] = None
    then_body: Optional[Statement] = None
    else_body: Optional[Statement] = None


@dataclass
class ForStatement(Statement):
    init: Optional[Statement] = None            # Declaration or Assignment
    condition: Optional[Expression] = None
    increment: Optional[Statement] = None        # Assignment
    body: Optional[Statement] = None


@dataclass
class WhileStatement(Statement):
    condition: Optional[Expression] = None
    body: Optional[Statement] = None


@dataclass
class ReturnStatement(Statement):
    value: Optional[Expression] = None


@dataclass
class BreakStatement(Statement):
    pass


@dataclass
class ContinueStatement(Statement):
    pass


# -- top level -----------------------------------------------------------------------------


@dataclass
class Parameter(Node):
    type_name: Optional[TypeName] = None
    name: str = ""


@dataclass
class FunctionDef(Node):
    return_type: Optional[TypeName] = None
    name: str = ""
    parameters: List[Parameter] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class TranslationUnit(Node):
    filename: str = "<source>"
    functions: List[FunctionDef] = field(default_factory=list)
