"""KernelC recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional

from repro.compiler.frontend.ast_nodes import (
    Assignment,
    BinaryExpr,
    Block,
    BreakStatement,
    CallExpr,
    CastExpr,
    ContinueStatement,
    Declaration,
    Expression,
    ExpressionStatement,
    FloatLiteral,
    ForStatement,
    FunctionDef,
    Identifier,
    IfStatement,
    IndexExpr,
    IntLiteral,
    Parameter,
    ReturnStatement,
    Statement,
    TranslationUnit,
    TypeName,
    UnaryExpr,
    WhileStatement,
)
from repro.compiler.frontend.lexer import Lexer, Token, TokenKind

TYPE_KEYWORDS = frozenset({"void", "int", "long", "float", "double"})
ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%="})

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} at {token.line}:{token.column} (got {token.text!r})")
        self.token = token


class Parser:
    """Parses a KernelC translation unit."""

    def __init__(self, source: str, filename: str = "<source>"):
        self.filename = filename
        self.tokens = Lexer(source, filename).tokens()
        self.pos = 0

    # -- token helpers -----------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if not token.is_punct(text):
            raise ParseError(f"expected {text!r}", token)
        return self._advance()

    def _expect_identifier(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENTIFIER:
            raise ParseError("expected identifier", token)
        return self._advance()

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._advance()
            return True
        return False

    def _at_type(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.kind is TokenKind.KEYWORD and token.text in TYPE_KEYWORDS

    # -- top level ----------------------------------------------------------------------

    def parse(self) -> TranslationUnit:
        unit = TranslationUnit(filename=self.filename)
        while self._peek().kind is not TokenKind.EOF:
            unit.functions.append(self._function())
        return unit

    def _type_name(self) -> TypeName:
        token = self._peek()
        if not self._at_type():
            raise ParseError("expected type name", token)
        self._advance()
        depth = 0
        while self._accept_punct("*"):
            depth += 1
        return TypeName(line=token.line, column=token.column,
                        name=token.text, pointer_depth=depth)

    def _function(self) -> FunctionDef:
        return_type = self._type_name()
        name_token = self._expect_identifier()
        self._expect_punct("(")
        parameters: List[Parameter] = []
        if not self._peek().is_punct(")"):
            while True:
                param_type = self._type_name()
                param_name = self._expect_identifier()
                parameters.append(Parameter(line=param_name.line, column=param_name.column,
                                            type_name=param_type, name=param_name.text))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        body = self._block()
        return FunctionDef(line=name_token.line, column=name_token.column,
                           return_type=return_type, name=name_token.text,
                           parameters=parameters, body=body)

    # -- statements ---------------------------------------------------------------------------

    def _block(self) -> Block:
        open_token = self._expect_punct("{")
        block = Block(line=open_token.line, column=open_token.column)
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError("unterminated block", self._peek())
            block.statements.append(self._statement())
        self._expect_punct("}")
        return block

    def _statement(self) -> Statement:
        token = self._peek()
        if token.is_punct("{"):
            return self._block()
        if token.is_keyword("if"):
            return self._if_statement()
        if token.is_keyword("for"):
            return self._for_statement()
        if token.is_keyword("while"):
            return self._while_statement()
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._peek().is_punct(";"):
                value = self._expression()
            self._expect_punct(";")
            return ReturnStatement(line=token.line, column=token.column, value=value)
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return BreakStatement(line=token.line, column=token.column)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ContinueStatement(line=token.line, column=token.column)
        if self._at_type():
            statement = self._declaration()
            self._expect_punct(";")
            return statement
        statement = self._simple_statement()
        self._expect_punct(";")
        return statement

    def _declaration(self) -> Declaration:
        type_name = self._type_name()
        name_token = self._expect_identifier()
        initializer = None
        if self._accept_punct("="):
            initializer = self._expression()
        return Declaration(line=name_token.line, column=name_token.column,
                           type_name=type_name, name=name_token.text,
                           initializer=initializer)

    def _simple_statement(self) -> Statement:
        """An assignment, increment/decrement or bare expression (no trailing ';')."""
        token = self._peek()
        expr = self._expression()
        next_token = self._peek()
        if next_token.kind is TokenKind.PUNCT and next_token.text in ASSIGN_OPS:
            op = self._advance().text
            value = self._expression()
            return Assignment(line=token.line, column=token.column,
                              target=expr, op=op, value=value)
        if next_token.is_punct("++") or next_token.is_punct("--"):
            self._advance()
            op = "+=" if next_token.text == "++" else "-="
            one = IntLiteral(line=next_token.line, column=next_token.column, value=1)
            return Assignment(line=token.line, column=token.column,
                              target=expr, op=op, value=one)
        return ExpressionStatement(line=token.line, column=token.column, expression=expr)

    def _if_statement(self) -> IfStatement:
        token = self._advance()  # 'if'
        self._expect_punct("(")
        condition = self._expression()
        self._expect_punct(")")
        then_body = self._statement()
        else_body = None
        if self._peek().is_keyword("else"):
            self._advance()
            else_body = self._statement()
        return IfStatement(line=token.line, column=token.column, condition=condition,
                           then_body=then_body, else_body=else_body)

    def _for_statement(self) -> ForStatement:
        token = self._advance()  # 'for'
        self._expect_punct("(")
        init: Optional[Statement] = None
        if not self._peek().is_punct(";"):
            init = self._declaration() if self._at_type() else self._simple_statement()
        self._expect_punct(";")
        condition: Optional[Expression] = None
        if not self._peek().is_punct(";"):
            condition = self._expression()
        self._expect_punct(";")
        increment: Optional[Statement] = None
        if not self._peek().is_punct(")"):
            increment = self._simple_statement()
        self._expect_punct(")")
        body = self._statement()
        return ForStatement(line=token.line, column=token.column, init=init,
                            condition=condition, increment=increment, body=body)

    def _while_statement(self) -> WhileStatement:
        token = self._advance()  # 'while'
        self._expect_punct("(")
        condition = self._expression()
        self._expect_punct(")")
        body = self._statement()
        return WhileStatement(line=token.line, column=token.column,
                              condition=condition, body=body)

    # -- expressions -----------------------------------------------------------------------------

    def _expression(self) -> Expression:
        return self._binary_expression(0)

    def _binary_expression(self, min_precedence: int) -> Expression:
        lhs = self._unary_expression()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.PUNCT:
                return lhs
            precedence = _PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return lhs
            self._advance()
            rhs = self._binary_expression(precedence + 1)
            lhs = BinaryExpr(line=token.line, column=token.column,
                             op=token.text, lhs=lhs, rhs=rhs)

    def _unary_expression(self) -> Expression:
        token = self._peek()
        if token.is_punct("-") or token.is_punct("!") or token.is_punct("~"):
            self._advance()
            operand = self._unary_expression()
            return UnaryExpr(line=token.line, column=token.column,
                             op=token.text, operand=operand)
        if token.is_punct("(") and self._at_type(1):
            # A cast: '(' type ')' expr.
            self._advance()
            target_type = self._type_name()
            self._expect_punct(")")
            operand = self._unary_expression()
            return CastExpr(line=token.line, column=token.column,
                            target_type=target_type, operand=operand)
        return self._postfix_expression()

    def _postfix_expression(self) -> Expression:
        expr = self._primary_expression()
        while True:
            token = self._peek()
            if token.is_punct("["):
                self._advance()
                index = self._expression()
                self._expect_punct("]")
                expr = IndexExpr(line=token.line, column=token.column,
                                 base=expr, index=index)
            else:
                return expr

    def _primary_expression(self) -> Expression:
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            return IntLiteral(line=token.line, column=token.column, value=int(token.text, 0))
        if token.kind is TokenKind.FLOAT_LITERAL:
            self._advance()
            text = token.text
            return FloatLiteral(line=token.line, column=token.column,
                                value=float(text), is_double="f" not in text.lower())
        if token.kind is TokenKind.IDENTIFIER:
            self._advance()
            if self._peek().is_punct("("):
                self._advance()
                args: List[Expression] = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._expression())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                return CallExpr(line=token.line, column=token.column,
                                callee=token.text, args=args)
            return Identifier(line=token.line, column=token.column, name=token.text)
        if token.is_punct("("):
            self._advance()
            expr = self._expression()
            self._expect_punct(")")
            return expr
        raise ParseError("expected expression", token)


def parse_source(source: str, filename: str = "<source>") -> TranslationUnit:
    """Convenience wrapper: lex and parse *source*."""
    return Parser(source, filename).parse()
