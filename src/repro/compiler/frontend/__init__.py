"""KernelC frontend: a small C-like language for writing computational kernels.

The paper's example kernel (the tiled matmul of Section 5.2) is ordinary C.
To exercise the full pipeline -- source -> IR -> loop analysis ->
instrumentation -> execution -- this package provides a compact C-like
language with the features that kernel (and the other workloads) need:
``int``/``long``/``float``/``double`` scalars, pointers, arrays-as-pointers,
``for``/``while``/``if``, compound assignment, function calls and casts.

The public entry point is :func:`compile_source`.
"""

from repro.compiler.frontend.lexer import Lexer, Token, TokenKind, LexerError
from repro.compiler.frontend.parser import Parser, ParseError
from repro.compiler.frontend.sema import SemanticAnalyzer, SemanticError
from repro.compiler.frontend.codegen import CodeGenerator
from repro.compiler.frontend.driver import compile_source

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "LexerError",
    "Parser",
    "ParseError",
    "SemanticAnalyzer",
    "SemanticError",
    "CodeGenerator",
    "compile_source",
]
