"""KernelC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional


class LexerError(Exception):
    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at {line}:{column}")
        self.line = line
        self.column = column


class TokenKind(enum.Enum):
    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    INT_LITERAL = "int_literal"
    FLOAT_LITERAL = "float_literal"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {"void", "int", "long", "float", "double", "if", "else", "for", "while",
     "return", "break", "continue"}
)

#: Multi-character punctuators, longest first so maximal munch works.
PUNCTUATORS = [
    "<<=", ">>=",
    "+=", "-=", "*=", "/=", "%=", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",",
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


class Lexer:
    """Turns KernelC source text into a token stream."""

    def __init__(self, source: str, filename: str = "<source>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            token = self.next_token()
            out.append(token)
            if token.kind is TokenKind.EOF:
                return out

    # -- scanning ---------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                self._advance(2)
            else:
                return

    def next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", line, column)

        char = self._peek()

        if char.isalpha() or char == "_":
            start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.source[start:self.pos]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
            return Token(kind, text, line, column)

        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._number(line, column)

        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line, column)

        raise LexerError(f"unexpected character {char!r}", line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E"):
            is_float = True
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start:self.pos]
        if self._peek() in ("f", "F"):
            is_float = True
            self._advance()
        if self._peek() in ("l", "L", "u", "U"):
            self._advance()
        kind = TokenKind.FLOAT_LITERAL if is_float else TokenKind.INT_LITERAL
        return Token(kind, text, line, column)
