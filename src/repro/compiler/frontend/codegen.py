"""KernelC -> IR code generation.

Locals live in allocas (no mem2reg), which keeps loop bodies free of
cross-block SSA values and makes the CodeExtractor's outlining job simple --
the same simplification Clang makes at -O0 before the optimiser runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler.frontend.ast_nodes import (
    Assignment,
    BinaryExpr,
    Block,
    BreakStatement,
    CallExpr,
    CastExpr,
    ContinueStatement,
    Declaration,
    Expression,
    ExpressionStatement,
    FloatLiteral,
    ForStatement,
    FunctionDef,
    Identifier,
    IfStatement,
    IndexExpr,
    IntLiteral,
    ReturnStatement,
    Statement,
    TranslationUnit,
    TypeName,
    UnaryExpr,
    WhileStatement,
)
from repro.compiler.frontend.sema import KNOWN_EXTERNALS, SemanticError
from repro.compiler.analysis.cfg import reachable_blocks
from repro.compiler.ir.builder import IRBuilder
from repro.compiler.ir.instructions import Alloca
from repro.compiler.ir.module import BasicBlock, Function, Module
from repro.compiler.ir.types import (
    F32,
    F64,
    FloatType,
    FunctionType,
    I1,
    I32,
    I64,
    IntType,
    PointerType,
    Type,
    VOID,
)
from repro.compiler.ir.values import Constant, Value

_SCALAR_TYPES: Dict[str, Type] = {
    "void": VOID,
    "int": I32,
    "long": I64,
    "float": F32,
    "double": F64,
}

_CMP_PREDICATES = {
    "<": ("slt", "olt"),
    "<=": ("sle", "ole"),
    ">": ("sgt", "ogt"),
    ">=": ("sge", "oge"),
    "==": ("eq", "oeq"),
    "!=": ("ne", "one"),
}

_ARITH_OPCODES = {
    "+": ("add", "fadd"),
    "-": ("sub", "fsub"),
    "*": ("mul", "fmul"),
    "/": ("sdiv", "fdiv"),
    "%": ("srem", "frem"),
}

_BITWISE_OPCODES = {"&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr"}


def lower_type(type_name: TypeName) -> Type:
    base = _SCALAR_TYPES.get(type_name.name)
    if base is None:
        raise SemanticError(f"unknown type {type_name.name!r}",
                            type_name.line, type_name.column)
    result: Type = base
    for _ in range(type_name.pointer_depth):
        result = PointerType(result)
    return result


class _LoopContext:
    """Targets for break/continue inside the innermost loop."""

    def __init__(self, continue_block: BasicBlock, break_block: BasicBlock):
        self.continue_block = continue_block
        self.break_block = break_block


class CodeGenerator:
    """Generates a :class:`Module` from a checked translation unit."""

    def __init__(self, unit: TranslationUnit, module_name: str = ""):
        self.unit = unit
        self.module = Module(module_name or unit.filename)
        self.builder = IRBuilder()
        self._locals: Dict[str, Alloca] = {}
        self._loop_stack: List[_LoopContext] = []
        self._current_function: Optional[Function] = None

    # -- entry point ------------------------------------------------------------------

    def generate(self) -> Module:
        # Declare every function first so calls resolve regardless of order.
        for function_def in self.unit.functions:
            ftype = FunctionType(
                lower_type(function_def.return_type),
                [lower_type(p.type_name) for p in function_def.parameters],
            )
            self.module.create_function(
                function_def.name, ftype, [p.name for p in function_def.parameters]
            )
        for name, argc in KNOWN_EXTERNALS.items():
            if not self.module.has_function(name):
                self.module.declare_function(
                    name, FunctionType(F32, [F32] * argc)
                )
        for function_def in self.unit.functions:
            self._generate_function(function_def)
        return self.module

    # -- functions ----------------------------------------------------------------------

    def _generate_function(self, function_def: FunctionDef) -> None:
        function = self.module.get_function(function_def.name)
        function.source_file = self.unit.filename
        self._current_function = function
        self._locals = {}
        entry = function.add_block("entry")
        self.builder.set_insertion_point(entry)
        self.builder.set_location(self.unit.filename, function_def.line,
                                  function_def.column)

        # Spill parameters to allocas so everything is uniform.
        for arg in function.args:
            slot = self.builder.alloca(arg.type, name=f"{arg.name}.addr")
            self.builder.store(arg, slot)
            self._locals[arg.name] = slot

        assert function_def.body is not None
        self._gen_block(function_def.body)

        # Terminate the fall-through path.
        if not self.builder.block.is_terminated:
            if function.return_type.is_void:
                self.builder.ret()
            else:
                self.builder.ret(self._zero(function.return_type))

        self._remove_unreachable_blocks(function)
        self._current_function = None

    def _remove_unreachable_blocks(self, function: Function) -> None:
        reachable = reachable_blocks(function)
        for block in list(function.blocks):
            if block not in reachable:
                function.remove_block(block)

    # -- statements ------------------------------------------------------------------------

    def _set_location(self, node) -> None:
        self.builder.set_location(self.unit.filename, node.line, node.column)

    def _gen_block(self, block: Block) -> None:
        # KernelC scoping was already validated by sema; shadowing across
        # nested blocks is rejected there, so a flat name->alloca map is safe.
        for statement in block.statements:
            self._gen_statement(statement)

    def _gen_statement(self, statement: Statement) -> None:
        self._set_location(statement)
        if isinstance(statement, Block):
            self._gen_block(statement)
        elif isinstance(statement, Declaration):
            self._gen_declaration(statement)
        elif isinstance(statement, Assignment):
            self._gen_assignment(statement)
        elif isinstance(statement, ExpressionStatement):
            if statement.expression is not None:
                self._gen_expression(statement.expression)
        elif isinstance(statement, IfStatement):
            self._gen_if(statement)
        elif isinstance(statement, ForStatement):
            self._gen_for(statement)
        elif isinstance(statement, WhileStatement):
            self._gen_while(statement)
        elif isinstance(statement, ReturnStatement):
            self._gen_return(statement)
        elif isinstance(statement, BreakStatement):
            self._gen_break()
        elif isinstance(statement, ContinueStatement):
            self._gen_continue()
        else:
            raise SemanticError(f"cannot generate code for {type(statement).__name__}",
                                statement.line, statement.column)

    def _gen_declaration(self, decl: Declaration) -> None:
        var_type = lower_type(decl.type_name)
        slot = self.builder.alloca(var_type, name=f"{decl.name}.addr")
        self._locals[decl.name] = slot
        if decl.initializer is not None:
            value = self._gen_expression(decl.initializer)
            self.builder.store(self._convert(value, var_type), slot)
        else:
            self.builder.store(self._zero(var_type), slot)

    def _gen_assignment(self, assign: Assignment) -> None:
        pointer, target_type = self._gen_lvalue(assign.target)
        value = self._gen_expression(assign.value)
        if assign.op == "=":
            self.builder.store(self._convert(value, target_type), pointer)
            return
        current = self.builder.load(pointer)
        operator = assign.op[0]  # '+=' -> '+'
        combined = self._arith(operator, current, value, assign)
        self.builder.store(self._convert(combined, target_type), pointer)

    def _gen_if(self, statement: IfStatement) -> None:
        function = self._current_function
        assert function is not None
        condition = self._to_bool(self._gen_expression(statement.condition))
        then_block = function.add_block(function.next_block_name("if.then"))
        merge_block = function.add_block(function.next_block_name("if.end"))
        else_block = merge_block
        if statement.else_body is not None:
            else_block = function.add_block(function.next_block_name("if.else"))
        self.builder.br(condition, then_block, else_block)

        self.builder.set_insertion_point(then_block)
        self._gen_statement(statement.then_body)
        if not self.builder.block.is_terminated:
            self.builder.jmp(merge_block)

        if statement.else_body is not None:
            self.builder.set_insertion_point(else_block)
            self._gen_statement(statement.else_body)
            if not self.builder.block.is_terminated:
                self.builder.jmp(merge_block)

        self.builder.set_insertion_point(merge_block)

    def _gen_for(self, statement: ForStatement) -> None:
        function = self._current_function
        assert function is not None
        if statement.init is not None:
            self._gen_statement(statement.init)

        cond_block = function.add_block(function.next_block_name("for.cond"))
        body_block = function.add_block(function.next_block_name("for.body"))
        inc_block = function.add_block(function.next_block_name("for.inc"))
        exit_block = function.add_block(function.next_block_name("for.end"))

        self.builder.jmp(cond_block)
        self.builder.set_insertion_point(cond_block)
        self._set_location(statement)
        if statement.condition is not None:
            condition = self._to_bool(self._gen_expression(statement.condition))
            self.builder.br(condition, body_block, exit_block)
        else:
            self.builder.jmp(body_block)

        self._loop_stack.append(_LoopContext(inc_block, exit_block))
        self.builder.set_insertion_point(body_block)
        self._gen_statement(statement.body)
        if not self.builder.block.is_terminated:
            self.builder.jmp(inc_block)
        self._loop_stack.pop()

        self.builder.set_insertion_point(inc_block)
        self._set_location(statement)
        if statement.increment is not None:
            self._gen_statement(statement.increment)
        self.builder.jmp(cond_block)

        self.builder.set_insertion_point(exit_block)

    def _gen_while(self, statement: WhileStatement) -> None:
        function = self._current_function
        assert function is not None
        cond_block = function.add_block(function.next_block_name("while.cond"))
        body_block = function.add_block(function.next_block_name("while.body"))
        exit_block = function.add_block(function.next_block_name("while.end"))

        self.builder.jmp(cond_block)
        self.builder.set_insertion_point(cond_block)
        self._set_location(statement)
        condition = self._to_bool(self._gen_expression(statement.condition))
        self.builder.br(condition, body_block, exit_block)

        self._loop_stack.append(_LoopContext(cond_block, exit_block))
        self.builder.set_insertion_point(body_block)
        self._gen_statement(statement.body)
        if not self.builder.block.is_terminated:
            self.builder.jmp(cond_block)
        self._loop_stack.pop()

        self.builder.set_insertion_point(exit_block)

    def _gen_return(self, statement: ReturnStatement) -> None:
        function = self._current_function
        assert function is not None
        if statement.value is None:
            self.builder.ret()
        else:
            value = self._gen_expression(statement.value)
            self.builder.ret(self._convert(value, function.return_type))
        # Statements after a return are dead; give them somewhere to go so the
        # builder stays usable, then drop the block during cleanup.
        dead = function.add_block(function.next_block_name("dead"))
        self.builder.set_insertion_point(dead)

    def _gen_break(self) -> None:
        if not self._loop_stack:
            raise SemanticError("break outside of a loop")
        self.builder.jmp(self._loop_stack[-1].break_block)
        self._start_dead_block()

    def _gen_continue(self) -> None:
        if not self._loop_stack:
            raise SemanticError("continue outside of a loop")
        self.builder.jmp(self._loop_stack[-1].continue_block)
        self._start_dead_block()

    def _start_dead_block(self) -> None:
        function = self._current_function
        assert function is not None
        dead = function.add_block(function.next_block_name("dead"))
        self.builder.set_insertion_point(dead)

    # -- expressions --------------------------------------------------------------------------

    def _gen_expression(self, expression: Expression) -> Value:
        self._set_location(expression)
        if isinstance(expression, IntLiteral):
            return Constant(I32, expression.value)
        if isinstance(expression, FloatLiteral):
            return Constant(F64 if expression.is_double else F32, expression.value)
        if isinstance(expression, Identifier):
            slot = self._lookup(expression)
            # Results get fresh auto-generated names; reusing the variable
            # name here would collide across repeated loads of the same local.
            return self.builder.load(slot)
        if isinstance(expression, BinaryExpr):
            return self._gen_binary(expression)
        if isinstance(expression, UnaryExpr):
            return self._gen_unary(expression)
        if isinstance(expression, IndexExpr):
            pointer, _ = self._gen_lvalue(expression)
            return self.builder.load(pointer)
        if isinstance(expression, CallExpr):
            return self._gen_call(expression)
        if isinstance(expression, CastExpr):
            value = self._gen_expression(expression.operand)
            return self._convert(value, lower_type(expression.target_type))
        raise SemanticError(f"cannot generate code for {type(expression).__name__}",
                            expression.line, expression.column)

    def _gen_binary(self, expression: BinaryExpr) -> Value:
        op = expression.op
        if op in ("&&", "||"):
            lhs = self._to_bool(self._gen_expression(expression.lhs))
            rhs = self._to_bool(self._gen_expression(expression.rhs))
            return self.builder.binary("and" if op == "&&" else "or", lhs, rhs)
        lhs = self._gen_expression(expression.lhs)
        rhs = self._gen_expression(expression.rhs)
        if op in _CMP_PREDICATES:
            lhs, rhs = self._usual_conversions(lhs, rhs)
            int_pred, fp_pred = _CMP_PREDICATES[op]
            if lhs.type.is_float:
                return self.builder.fcmp(fp_pred, lhs, rhs)
            return self.builder.icmp(int_pred, lhs, rhs)
        if op in _ARITH_OPCODES:
            return self._arith(op, lhs, rhs, expression)
        if op in _BITWISE_OPCODES:
            lhs, rhs = self._usual_conversions(lhs, rhs)
            return self.builder.binary(_BITWISE_OPCODES[op], lhs, rhs)
        raise SemanticError(f"unsupported binary operator {op!r}",
                            expression.line, expression.column)

    def _arith(self, op: str, lhs: Value, rhs: Value, node) -> Value:
        # Pointer arithmetic: ptr +/- integer becomes getelementptr.
        if lhs.type.is_pointer and op in ("+", "-"):
            index = self._convert(rhs, I64)
            if op == "-":
                index = self.builder.sub(Constant(I64, 0), index)
            return self.builder.gep(lhs, index)
        lhs, rhs = self._usual_conversions(lhs, rhs)
        int_opcode, fp_opcode = _ARITH_OPCODES[op]
        opcode = fp_opcode if lhs.type.is_float else int_opcode
        return self.builder.binary(opcode, lhs, rhs)

    def _gen_unary(self, expression: UnaryExpr) -> Value:
        operand = self._gen_expression(expression.operand)
        if expression.op == "-":
            if operand.type.is_float:
                return self.builder.fsub(Constant(operand.type, 0.0), operand)
            return self.builder.sub(Constant(operand.type, 0), operand)
        if expression.op == "!":
            boolean = self._to_bool(operand)
            return self.builder.binary("xor", boolean, Constant(I1, 1))
        if expression.op == "~":
            return self.builder.binary("xor", operand, Constant(operand.type, -1))
        raise SemanticError(f"unsupported unary operator {expression.op!r}",
                            expression.line, expression.column)

    def _gen_call(self, expression: CallExpr) -> Value:
        callee = self.module.get_function(expression.callee)
        args: List[Value] = []
        for arg_expr, param_type in zip(expression.args, callee.ftype.param_types):
            args.append(self._convert(self._gen_expression(arg_expr), param_type))
        return self.builder.call(callee, args)

    # -- lvalues -----------------------------------------------------------------------------------

    def _lookup(self, identifier: Identifier) -> Alloca:
        slot = self._locals.get(identifier.name)
        if slot is None:
            raise SemanticError(f"use of undeclared identifier {identifier.name!r}",
                                identifier.line, identifier.column)
        return slot

    def _gen_lvalue(self, expression: Expression) -> Tuple[Value, Type]:
        """Return ``(pointer, pointee type)`` for an assignable expression."""
        if isinstance(expression, Identifier):
            slot = self._lookup(expression)
            return slot, slot.allocated_type
        if isinstance(expression, IndexExpr):
            base = self._gen_expression(expression.base)
            if not base.type.is_pointer:
                raise SemanticError("subscripted value is not a pointer",
                                    expression.line, expression.column)
            index = self._convert(self._gen_expression(expression.index), I64)
            pointer = self.builder.gep(base, index)
            return pointer, base.type.pointee
        raise SemanticError("expression is not an lvalue",
                            expression.line, expression.column)

    # -- conversions ---------------------------------------------------------------------------------

    @staticmethod
    def _zero(type_: Type) -> Constant:
        if type_.is_float:
            return Constant(type_, 0.0)
        if type_.is_pointer:
            return Constant(I64, 0)
        return Constant(type_, 0)

    def _to_bool(self, value: Value) -> Value:
        if value.type == I1:
            return value
        if value.type.is_float:
            return self.builder.fcmp("one", value, Constant(value.type, 0.0))
        if value.type.is_integer:
            return self.builder.icmp("ne", value, Constant(value.type, 0))
        raise SemanticError(f"cannot convert {value.type} to a boolean")

    def _convert(self, value: Value, to_type: Type) -> Value:
        from_type = value.type
        if from_type == to_type:
            return value
        if isinstance(from_type, IntType) and isinstance(to_type, IntType):
            if from_type.bits < to_type.bits:
                opcode = "zext" if from_type.bits == 1 else "sext"
                return self.builder.cast(opcode, value, to_type)
            return self.builder.trunc(value, to_type)
        if isinstance(from_type, IntType) and isinstance(to_type, FloatType):
            widened = value
            if from_type.bits == 1:
                widened = self.builder.cast("zext", value, I32)
            return self.builder.sitofp(widened, to_type)
        if isinstance(from_type, FloatType) and isinstance(to_type, IntType):
            return self.builder.fptosi(value, to_type)
        if isinstance(from_type, FloatType) and isinstance(to_type, FloatType):
            if from_type.bits < to_type.bits:
                return self.builder.fpext(value, to_type)
            return self.builder.fptrunc(value, to_type)
        if from_type.is_pointer and to_type.is_pointer:
            return self.builder.cast("bitcast", value, to_type)
        raise SemanticError(f"cannot convert {from_type} to {to_type}")

    def _usual_conversions(self, lhs: Value, rhs: Value) -> Tuple[Value, Value]:
        """C's usual arithmetic conversions, reduced to this type lattice."""
        lt, rt = lhs.type, rhs.type
        if lt == rt:
            return lhs, rhs
        if lt.is_float or rt.is_float:
            target = F64 if (lt == F64 or rt == F64) else F32
            return self._convert(lhs, target), self._convert(rhs, target)
        if isinstance(lt, IntType) and isinstance(rt, IntType):
            target = lt if lt.bits >= rt.bits else rt
            if target.bits < 32:
                target = I32
            return self._convert(lhs, target), self._convert(rhs, target)
        return lhs, rhs
