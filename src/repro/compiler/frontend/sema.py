"""KernelC semantic analysis.

Checks performed before code generation:

* every identifier refers to a declared variable or parameter;
* no variable is redeclared in the same scope;
* assignment targets are lvalues (identifiers or subscripts);
* called functions exist (in the translation unit or the known runtime
  external set) and are called with the right number of arguments;
* ``return`` statements match the function's return type (value presence);
* subscripted expressions have pointer type;
* ``break``/``continue`` appear inside a loop.

Type *conversions* (int -> long, int -> float, ...) are handled during code
generation using the usual arithmetic conversions; sema only rejects things
that have no meaning at all (e.g. subscripting a float).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.compiler.frontend.ast_nodes import (
    Assignment,
    BinaryExpr,
    Block,
    BreakStatement,
    CallExpr,
    CastExpr,
    ContinueStatement,
    Declaration,
    Expression,
    ExpressionStatement,
    FloatLiteral,
    ForStatement,
    FunctionDef,
    Identifier,
    IfStatement,
    IndexExpr,
    IntLiteral,
    ReturnStatement,
    Statement,
    TranslationUnit,
    TypeName,
    UnaryExpr,
    WhileStatement,
)

#: External functions kernels may call without defining them; the execution
#: engine provides implementations (see repro.vm.engine and repro.runtime).
KNOWN_EXTERNALS: Dict[str, int] = {
    "sqrtf": 1,
    "fabsf": 1,
    "expf": 1,
    "logf": 1,
    "fminf": 2,
    "fmaxf": 2,
}


class SemanticError(Exception):
    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at {line}:{column}" if line else ""
        super().__init__(message + location)
        self.line = line
        self.column = column


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, TypeName] = {}

    def declare(self, name: str, type_name: TypeName, line: int, column: int) -> None:
        if name in self.symbols:
            raise SemanticError(f"redeclaration of {name!r}", line, column)
        self.symbols[name] = type_name

    def lookup(self, name: str) -> Optional[TypeName]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Checks a translation unit; raises :class:`SemanticError` on problems."""

    def __init__(self, unit: TranslationUnit):
        self.unit = unit
        self.functions: Dict[str, FunctionDef] = {}
        self._loop_depth = 0
        self._current_function: Optional[FunctionDef] = None

    def analyze(self) -> None:
        for function in self.unit.functions:
            if function.name in self.functions:
                raise SemanticError(
                    f"redefinition of function {function.name!r}",
                    function.line, function.column,
                )
            self.functions[function.name] = function
        for function in self.unit.functions:
            self._check_function(function)

    # -- functions -----------------------------------------------------------------------

    def _check_function(self, function: FunctionDef) -> None:
        self._current_function = function
        scope = _Scope()
        for param in function.parameters:
            if param.type_name.name == "void" and param.type_name.pointer_depth == 0:
                raise SemanticError(
                    f"parameter {param.name!r} cannot have type void",
                    param.line, param.column,
                )
            scope.declare(param.name, param.type_name, param.line, param.column)
        if function.body is not None:
            self._check_block(function.body, scope)
        self._current_function = None

    # -- statements -------------------------------------------------------------------------

    def _check_block(self, block: Block, scope: _Scope) -> None:
        inner = _Scope(scope)
        for statement in block.statements:
            self._check_statement(statement, inner)

    def _check_statement(self, statement: Statement, scope: _Scope) -> None:
        if isinstance(statement, Block):
            self._check_block(statement, scope)
        elif isinstance(statement, Declaration):
            if statement.initializer is not None:
                self._check_expression(statement.initializer, scope)
            if statement.type_name.name == "void" and statement.type_name.pointer_depth == 0:
                raise SemanticError(
                    f"variable {statement.name!r} cannot have type void",
                    statement.line, statement.column,
                )
            scope.declare(statement.name, statement.type_name,
                          statement.line, statement.column)
        elif isinstance(statement, Assignment):
            if not isinstance(statement.target, (Identifier, IndexExpr)):
                raise SemanticError("assignment target is not an lvalue",
                                    statement.line, statement.column)
            self._check_expression(statement.target, scope)
            self._check_expression(statement.value, scope)
        elif isinstance(statement, ExpressionStatement):
            self._check_expression(statement.expression, scope)
        elif isinstance(statement, IfStatement):
            self._check_expression(statement.condition, scope)
            self._check_statement(statement.then_body, scope)
            if statement.else_body is not None:
                self._check_statement(statement.else_body, scope)
        elif isinstance(statement, ForStatement):
            loop_scope = _Scope(scope)
            if statement.init is not None:
                self._check_statement(statement.init, loop_scope)
            if statement.condition is not None:
                self._check_expression(statement.condition, loop_scope)
            if statement.increment is not None:
                self._check_statement(statement.increment, loop_scope)
            self._loop_depth += 1
            self._check_statement(statement.body, loop_scope)
            self._loop_depth -= 1
        elif isinstance(statement, WhileStatement):
            self._check_expression(statement.condition, scope)
            self._loop_depth += 1
            self._check_statement(statement.body, scope)
            self._loop_depth -= 1
        elif isinstance(statement, ReturnStatement):
            function = self._current_function
            assert function is not None
            returns_void = (
                function.return_type.name == "void"
                and function.return_type.pointer_depth == 0
            )
            if returns_void and statement.value is not None:
                raise SemanticError(
                    f"void function {function.name!r} returns a value",
                    statement.line, statement.column,
                )
            if not returns_void and statement.value is None:
                raise SemanticError(
                    f"non-void function {function.name!r} returns without a value",
                    statement.line, statement.column,
                )
            if statement.value is not None:
                self._check_expression(statement.value, scope)
        elif isinstance(statement, (BreakStatement, ContinueStatement)):
            if self._loop_depth == 0:
                keyword = "break" if isinstance(statement, BreakStatement) else "continue"
                raise SemanticError(f"{keyword!r} outside of a loop",
                                    statement.line, statement.column)
        else:
            raise SemanticError(
                f"unhandled statement kind {type(statement).__name__}",
                statement.line, statement.column,
            )

    # -- expressions -------------------------------------------------------------------------

    def _check_expression(self, expression: Expression, scope: _Scope) -> None:
        if isinstance(expression, (IntLiteral, FloatLiteral)):
            return
        if isinstance(expression, Identifier):
            if scope.lookup(expression.name) is None:
                raise SemanticError(f"use of undeclared identifier {expression.name!r}",
                                    expression.line, expression.column)
            return
        if isinstance(expression, BinaryExpr):
            self._check_expression(expression.lhs, scope)
            self._check_expression(expression.rhs, scope)
            return
        if isinstance(expression, UnaryExpr):
            self._check_expression(expression.operand, scope)
            return
        if isinstance(expression, IndexExpr):
            self._check_expression(expression.base, scope)
            self._check_expression(expression.index, scope)
            base = expression.base
            if isinstance(base, Identifier):
                base_type = scope.lookup(base.name)
                if base_type is not None and base_type.pointer_depth == 0:
                    raise SemanticError(
                        f"subscripted value {base.name!r} is not a pointer",
                        expression.line, expression.column,
                    )
            return
        if isinstance(expression, CallExpr):
            for arg in expression.args:
                self._check_expression(arg, scope)
            if expression.callee in self.functions:
                expected = len(self.functions[expression.callee].parameters)
            elif expression.callee in KNOWN_EXTERNALS:
                expected = KNOWN_EXTERNALS[expression.callee]
            else:
                raise SemanticError(f"call to undefined function {expression.callee!r}",
                                    expression.line, expression.column)
            if expected != len(expression.args):
                raise SemanticError(
                    f"function {expression.callee!r} expects {expected} arguments, "
                    f"got {len(expression.args)}",
                    expression.line, expression.column,
                )
            return
        if isinstance(expression, CastExpr):
            self._check_expression(expression.operand, scope)
            return
        raise SemanticError(
            f"unhandled expression kind {type(expression).__name__}",
            expression.line, expression.column,
        )
