"""CFG simplification.

Three cleanups that matter after other passes have run:

* turn conditional branches with a constant condition into unconditional
  jumps;
* remove blocks that have become unreachable from the entry;
* merge a block into its unique predecessor when that predecessor jumps
  unconditionally to it and it is the predecessor's only successor.
"""

from __future__ import annotations

from typing import Dict

from repro.compiler.analysis.cfg import predecessors, reachable_blocks
from repro.compiler.ir.instructions import Branch, Jump, Phi
from repro.compiler.ir.module import Function
from repro.compiler.ir.values import Constant
from repro.compiler.transforms.pass_manager import FunctionPass


class SimplifyCfgPass(FunctionPass):
    """Basic CFG cleanups."""

    name = "simplify-cfg"

    def __init__(self) -> None:
        self._constant_branches = 0
        self._removed_blocks = 0
        self._merged_blocks = 0

    @property
    def statistics(self) -> Dict[str, int]:
        return {
            "constant_branches": self._constant_branches,
            "removed_blocks": self._removed_blocks,
            "merged_blocks": self._merged_blocks,
        }

    def run_on_function(self, function: Function) -> bool:
        changed = False
        changed |= self._fold_constant_branches(function)
        changed |= self._remove_unreachable(function)
        changed |= self._merge_straightline(function)
        return changed

    def _fold_constant_branches(self, function: Function) -> bool:
        changed = False
        for block in function.blocks:
            term = block.terminator
            if isinstance(term, Branch) and isinstance(term.condition, Constant):
                target = term.then_block if term.condition.value else term.else_block
                block.remove(term)
                term.drop_operands()
                block.append(Jump(target))
                self._constant_branches += 1
                changed = True
        return changed

    def _remove_unreachable(self, function: Function) -> bool:
        reachable = reachable_blocks(function)
        removed = False
        for block in list(function.blocks):
            if block not in reachable:
                # Drop phi incomings that referenced the dead block.
                for other in function.blocks:
                    for phi in other.phis():
                        phi.incoming = [
                            (v, b) for v, b in phi.incoming if b is not block
                        ]
                function.remove_block(block)
                self._removed_blocks += 1
                removed = True
        return removed

    def _merge_straightline(self, function: Function) -> bool:
        changed = True
        any_change = False
        while changed:
            changed = False
            preds = predecessors(function)
            for block in list(function.blocks):
                if block is function.entry_block:
                    continue
                block_preds = preds.get(block, [])
                if len(block_preds) != 1:
                    continue
                pred = block_preds[0]
                term = pred.terminator
                if not isinstance(term, Jump) or term.target is not block:
                    continue
                if block.phis():
                    continue
                # Merge: remove pred's jump, move block's instructions up.
                pred.remove(term)
                term.drop_operands()
                for inst in list(block.instructions):
                    block.remove(inst)
                    pred.instructions.append(inst)
                    inst.parent = pred
                function.remove_block(block)
                # Phis in successors referring to `block` must now refer to `pred`.
                for successor in pred.successors():
                    for phi in successor.phis():
                        phi.incoming = [
                            (v, pred if b is block else b) for v, b in phi.incoming
                        ]
                self._merged_blocks += 1
                changed = True
                any_change = True
                break
        return any_change
