"""CodeExtractor: outline a SESE region into its own function.

This mirrors LLVM's ``CodeExtractor`` utility in the form the paper uses it:
a single-entry/single-exit loop nest is moved into a fresh ``void`` function
whose parameters are the values the region used from its surroundings, and
the original location is left with a call to that function.

Because the KernelC frontend keeps every local in an alloca, regions never
produce SSA values consumed after the loop, so the outlined function needs no
return values.  The extractor still checks this precondition and refuses to
outline if it does not hold (e.g. for hand-built IR in SSA form).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.analysis.regions import Region
from repro.compiler.ir.instructions import (
    Branch,
    Call,
    Instruction,
    Jump,
    Phi,
    Ret,
)
from repro.compiler.ir.module import BasicBlock, Function, Module
from repro.compiler.ir.types import FunctionType, VOID
from repro.compiler.ir.values import Argument, Constant, UndefValue, Value


class ExtractionError(Exception):
    """Raised when a region cannot be outlined."""


@dataclass
class ExtractionResult:
    """What :meth:`CodeExtractor.extract` produced."""

    outlined_function: Function
    #: The block in the original function that now calls the outlined function.
    call_block: BasicBlock
    #: The call instruction itself.
    call_instruction: Call
    #: The values passed as arguments, in parameter order.
    inputs: List[Value] = field(default_factory=list)
    #: The region's original exit block (still in the original function).
    exit_block: Optional[BasicBlock] = None


class CodeExtractor:
    """Outlines one SESE region of one function."""

    def __init__(self, function: Function, region: Region):
        if function.parent is None:
            raise ExtractionError("function must belong to a module")
        self.function = function
        self.module: Module = function.parent
        self.region = region

    # -- analysis ------------------------------------------------------------------------

    def find_inputs(self) -> List[Value]:
        """Values defined outside the region but used inside it."""
        inputs: List[Value] = []
        seen = set()
        for block in self._ordered_region_blocks():
            for inst in block.instructions:
                for operand in inst.operands:
                    if isinstance(operand, (Constant, UndefValue, Function, BasicBlock)):
                        continue
                    if isinstance(operand, Argument):
                        key = id(operand)  # repro-lint: allow[no-id] -- identity dedup within one compile; order comes from operand walk, not the ids
                        if key not in seen:
                            seen.add(key)
                            inputs.append(operand)
                        continue
                    if isinstance(operand, Instruction):
                        if operand.parent is not None and operand.parent not in self.region.blocks:
                            key = id(operand)  # repro-lint: allow[no-id] -- identity dedup within one compile; order comes from operand walk, not the ids
                            if key not in seen:
                                seen.add(key)
                                inputs.append(operand)
        return inputs

    def find_outputs(self) -> List[Value]:
        """Values defined inside the region but used outside it."""
        outputs: List[Value] = []
        for block in self.function.blocks:
            if block in self.region.blocks:
                continue
            for inst in block.instructions:
                for operand in inst.operands:
                    if isinstance(operand, Instruction) and operand.parent in self.region.blocks:
                        if operand not in outputs:
                            outputs.append(operand)
        return outputs

    def _ordered_region_blocks(self) -> List[BasicBlock]:
        return [b for b in self.function.blocks if b in self.region.blocks]

    # -- extraction ------------------------------------------------------------------------

    def extract(self, name: str) -> ExtractionResult:
        """Outline the region into a new function called *name*."""
        outputs = self.find_outputs()
        if outputs:
            raise ExtractionError(
                f"region in @{self.function.name} produces values used outside "
                f"({', '.join('%' + (v.name or '?') for v in outputs)}); "
                "cannot outline"
            )
        inputs = self.find_inputs()
        region_blocks = self._ordered_region_blocks()
        entry = self.region.entry
        exit_block = self.region.exit

        # Create the new function.
        new_type = FunctionType(VOID, [v.type for v in inputs])
        arg_names = []
        for i, value in enumerate(inputs):
            base = value.name or f"in{i}"
            arg_names.append(f"{base}.in" if base in arg_names else base)
        outlined = self.module.create_function(name, new_type, arg_names)
        outlined.source_file = self.function.source_file
        outlined.metadata["mperf.outlined_from"] = self.function.name

        # Move the region blocks into it (entry block first).
        ordered = [entry] + [b for b in region_blocks if b is not entry]
        for block in ordered:
            self.function.remove_block(block)
            block.parent = outlined
            outlined.blocks.append(block)

        # Replace uses of the inputs with the new function's arguments.
        remap: Dict[Value, Value] = {
            value: arg for value, arg in zip(inputs, outlined.args)
        }
        for block in outlined.blocks:
            for inst in block.instructions:
                for old, new in remap.items():
                    inst.replace_uses_of(old, new)
                if isinstance(inst, Phi):
                    inst.incoming = [
                        (remap.get(v, v), b) for v, b in inst.incoming
                    ]

        # Edges that used to leave the region now return from the function.
        return_block = outlined.add_block("region.exit")
        return_block.append(Ret(None))
        for block in outlined.blocks:
            term = block.terminator
            if isinstance(term, (Branch, Jump)):
                term.replace_successor(exit_block, return_block)

        # Build the call site in the original function.
        call_block = self.function.add_block(
            self.function.next_block_name("outlined.call")
        )
        call = Call(outlined, list(inputs), VOID)
        call_block.append(call)
        call_block.append(Jump(exit_block))

        # Redirect every edge that used to enter the region to the call block.
        for block in self.function.blocks:
            if block is call_block:
                continue
            term = block.terminator
            if isinstance(term, (Branch, Jump)):
                term.replace_successor(entry, call_block)

        return ExtractionResult(
            outlined_function=outlined,
            call_block=call_block,
            call_instruction=call,
            inputs=list(inputs),
            exit_block=exit_block,
        )
