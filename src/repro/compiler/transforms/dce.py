"""Dead-code elimination.

Removes instructions whose results are unused and that have no side effects.
Runs to a fixed point within each function (removing one instruction can make
its operands dead too).
"""

from __future__ import annotations

from typing import Dict

from repro.compiler.ir.instructions import Alloca, Instruction, Load, Phi
from repro.compiler.ir.module import Function
from repro.compiler.transforms.pass_manager import FunctionPass


class DeadCodeEliminationPass(FunctionPass):
    """Delete trivially dead instructions."""

    name = "dce"

    def __init__(self, remove_dead_allocas: bool = True):
        self.remove_dead_allocas = remove_dead_allocas
        self._removed = 0

    @property
    def statistics(self) -> Dict[str, int]:
        return {"removed": self._removed}

    def _is_dead(self, inst: Instruction, function: Function) -> bool:
        if inst.has_side_effects or inst.is_terminator:
            return False
        if inst.type.is_void:
            return False
        if isinstance(inst, Alloca) and not self.remove_dead_allocas:
            return False
        # An instruction is dead when no instruction in the function uses it.
        for block in function.blocks:
            for other in block.instructions:
                if inst in other.operands:
                    return False
                if isinstance(other, Phi) and any(v is inst for v, _ in other.incoming):
                    return False
        return True

    def run_on_function(self, function: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for block in function.blocks:
                for inst in list(block.instructions):
                    if self._is_dead(inst, function):
                        block.remove(inst)
                        inst.drop_operands()
                        self._removed += 1
                        changed = True
                        progress = True
        return changed
