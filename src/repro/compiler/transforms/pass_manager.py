"""The pass manager.

A thin re-creation of LLVM's new pass manager: passes are objects with a
``run`` method, the manager runs them in order, records per-pass statistics
and (by default) re-verifies the module after every pass so a broken
transformation cannot silently corrupt instrumentation counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.compiler.ir.module import Function, Module
from repro.compiler.ir.verifier import VerificationError, verify_module


@dataclass
class PassResult:
    """Outcome of running one pass."""

    pass_name: str
    changed: bool
    seconds: float
    statistics: Dict[str, int] = field(default_factory=dict)


class FunctionPass:
    """A pass that runs once per defined function."""

    name = "function-pass"

    def run_on_function(self, function: Function) -> bool:
        """Transform *function*; return True when something changed."""
        raise NotImplementedError

    @property
    def statistics(self) -> Dict[str, int]:
        return {}


class ModulePass:
    """A pass that runs once over the whole module."""

    name = "module-pass"

    def run_on_module(self, module: Module) -> bool:
        raise NotImplementedError

    @property
    def statistics(self) -> Dict[str, int]:
        return {}


class PassManager:
    """Runs a sequence of passes over a module."""

    def __init__(self, verify_each: bool = True):
        self.verify_each = verify_each
        self._passes: List[Union[FunctionPass, ModulePass]] = []
        self.results: List[PassResult] = []

    def add(self, pass_: Union[FunctionPass, ModulePass]) -> "PassManager":
        self._passes.append(pass_)
        return self

    def run(self, module: Module) -> List[PassResult]:
        """Run the pipeline; the module is verified either way.

        With ``verify_each`` the verifier runs after every pass and a
        failure names the pass that broke the module; without it one
        verification runs after the whole pipeline (same guarantee, one
        pass-pipeline's worth cheaper, but the culprit is not localised --
        re-run with ``REPRO_VERIFY_IR=1`` or ``verify_each=True`` to find
        it).
        """
        self.results = []
        for pass_ in self._passes:
            start = time.perf_counter()  # repro-lint: allow[wall-clock] -- per-pass compile timings are diagnostics, never part of modelled time or golden output
            changed = self._run_one(pass_, module)
            elapsed = time.perf_counter() - start  # repro-lint: allow[wall-clock] -- per-pass compile timings are diagnostics, never part of modelled time or golden output
            self.results.append(
                PassResult(
                    pass_name=pass_.name,
                    changed=changed,
                    seconds=elapsed,
                    statistics=dict(pass_.statistics),
                )
            )
            if self.verify_each:
                self._verify(module, after=pass_.name)
        if not self.verify_each:
            self._verify(module, after=None)
        return self.results

    @staticmethod
    def _verify(module: Module, after: Optional[str]) -> None:
        try:
            verify_module(module)
        except VerificationError as error:
            context = (f"after pass {after!r}" if after
                       else "after the pass pipeline")
            raise VerificationError(
                [f"[{context}] {message}" for message in error.errors]
            ) from None

    def _run_one(self, pass_: Union[FunctionPass, ModulePass], module: Module) -> bool:
        if isinstance(pass_, ModulePass):
            return pass_.run_on_module(module)
        changed = False
        for function in list(module.defined_functions()):
            if pass_.run_on_function(function):
                changed = True
        return changed

    def summary(self) -> str:
        lines = ["pass results:"]
        for result in self.results:
            stats = ", ".join(f"{k}={v}" for k, v in result.statistics.items())
            lines.append(
                f"  {result.pass_name:<28} changed={str(result.changed):<5} "
                f"{result.seconds * 1e3:7.2f} ms  {stats}"
            )
        return "\n".join(lines)
