"""Constant folding.

Folds binary operations, comparisons and casts whose operands are all
constants.  Besides being a standard cleanup, it keeps the instrumentation's
static per-block operation counts honest: a ``mul i64 8, 4`` the backend
would fold away should not be counted as work.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.compiler.ir.instructions import (
    BinaryOp,
    Cast,
    CompareOp,
    Instruction,
    Select,
)
from repro.compiler.ir.module import Function
from repro.compiler.ir.types import FloatType, IntType
from repro.compiler.ir.values import Constant, Value
from repro.compiler.transforms.pass_manager import FunctionPass


def _fold_int_binary(opcode: str, a: int, b: int, type_: IntType) -> Optional[int]:
    if opcode == "add":
        return a + b
    if opcode == "sub":
        return a - b
    if opcode == "mul":
        return a * b
    if opcode in ("sdiv", "udiv"):
        if b == 0:
            return None
        result = abs(a) // abs(b)
        return -result if (a < 0) != (b < 0) else result
    if opcode in ("srem", "urem"):
        if b == 0:
            return None
        return a - b * (abs(a) // abs(b)) * (1 if (a < 0) == (b < 0) else -1)
    if opcode == "and":
        return a & b
    if opcode == "or":
        return a | b
    if opcode == "xor":
        return a ^ b
    if opcode == "shl":
        return a << (b % type_.bits)
    if opcode == "lshr":
        mask = (1 << type_.bits) - 1
        return (a & mask) >> (b % type_.bits)
    if opcode == "ashr":
        return a >> (b % type_.bits)
    return None


def _fold_fp_binary(opcode: str, a: float, b: float) -> Optional[float]:
    try:
        if opcode == "fadd":
            return a + b
        if opcode == "fsub":
            return a - b
        if opcode == "fmul":
            return a * b
        if opcode == "fdiv":
            return a / b if b != 0.0 else None
        if opcode == "frem":
            import math
            return math.fmod(a, b) if b != 0.0 else None
    except OverflowError:
        return None
    return None


_ICMP = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
    "ult": lambda a, b: a < b, "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b, "uge": lambda a, b: a >= b,
}
_FCMP = {
    "oeq": lambda a, b: a == b, "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b, "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b, "oge": lambda a, b: a >= b,
}


class ConstantFoldPass(FunctionPass):
    """Fold constant expressions and propagate the results to their users."""

    name = "constant-fold"

    def __init__(self) -> None:
        self._folded = 0

    @property
    def statistics(self) -> Dict[str, int]:
        return {"folded": self._folded}

    def run_on_function(self, function: Function) -> bool:
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                replacement = self._fold(inst)
                if replacement is None:
                    continue
                self._replace_everywhere(function, inst, replacement)
                block.remove(inst)
                inst.drop_operands()
                self._folded += 1
                changed = True
        return changed

    # -- helpers -----------------------------------------------------------------------

    def _fold(self, inst: Instruction) -> Optional[Constant]:
        if isinstance(inst, BinaryOp):
            lhs, rhs = inst.lhs, inst.rhs
            if not (isinstance(lhs, Constant) and isinstance(rhs, Constant)):
                return None
            if isinstance(inst.type, IntType):
                value = _fold_int_binary(inst.opcode, lhs.value, rhs.value, inst.type)
            elif isinstance(inst.type, FloatType):
                value = _fold_fp_binary(inst.opcode, lhs.value, rhs.value)
            else:
                return None
            return Constant(inst.type, value) if value is not None else None
        if isinstance(inst, CompareOp):
            lhs, rhs = inst.lhs, inst.rhs
            if not (isinstance(lhs, Constant) and isinstance(rhs, Constant)):
                return None
            table = _ICMP if inst.opcode == "icmp" else _FCMP
            result = table[inst.predicate](lhs.value, rhs.value)
            return Constant(IntType(1), int(result))
        if isinstance(inst, Cast):
            value = inst.value
            if not isinstance(value, Constant):
                return None
            if inst.opcode in ("sext", "zext", "trunc"):
                return Constant(inst.type, int(value.value))
            if inst.opcode in ("fpext", "fptrunc"):
                return Constant(inst.type, float(value.value))
            if inst.opcode == "sitofp":
                return Constant(inst.type, float(value.value))
            if inst.opcode == "fptosi":
                return Constant(inst.type, int(value.value))
            return None
        if isinstance(inst, Select):
            condition = inst.condition
            if isinstance(condition, Constant):
                chosen = inst.true_value if condition.value else inst.false_value
                if isinstance(chosen, Constant):
                    return chosen
            return None
        return None

    @staticmethod
    def _replace_everywhere(function: Function, old: Value, new: Value) -> None:
        for block in function.blocks:
            for inst in block.instructions:
                inst.replace_uses_of(old, new)
                # Phi incoming lists keep their own value references.
                if hasattr(inst, "incoming"):
                    inst.incoming = [
                        (new if v is old else v, b) for v, b in inst.incoming
                    ]
