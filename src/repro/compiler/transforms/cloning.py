"""Function and instruction cloning.

The Roofline instrumentation pass needs to duplicate an outlined loop
function: one copy stays untouched (the baseline path), the other receives
counting calls.  ``clone_function`` performs a deep copy with full operand
remapping, optionally appending extra parameters to the clone's signature
(the instrumented variant takes the loop handle as a trailing argument).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    GetElementPtr,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.compiler.ir.module import BasicBlock, Function, Module
from repro.compiler.ir.types import FunctionType, Type
from repro.compiler.ir.values import Argument, Constant, UndefValue, Value


def _map_value(value: Value, value_map: Dict[Value, Value]) -> Value:
    """Look up an operand in the remapping table (constants map to themselves)."""
    if isinstance(value, (Constant, UndefValue)):
        return value
    if isinstance(value, Function):
        return value
    return value_map.get(value, value)


def clone_instruction(inst: Instruction, value_map: Dict[Value, Value],
                      block_map: Dict[BasicBlock, BasicBlock]) -> Instruction:
    """Clone one instruction, remapping operands and successor blocks.

    Phi nodes are cloned *without* their incoming lists; the caller fills
    them in after all blocks exist (see :func:`clone_function`).
    """
    def m(value: Value) -> Value:
        return _map_value(value, value_map)

    if isinstance(inst, BinaryOp):
        clone: Instruction = BinaryOp(inst.opcode, m(inst.lhs), m(inst.rhs), inst.name)
    elif isinstance(inst, CompareOp):
        clone = CompareOp(inst.opcode, inst.predicate, m(inst.lhs), m(inst.rhs), inst.name)
    elif isinstance(inst, Load):
        clone = Load(m(inst.pointer), inst.name)
    elif isinstance(inst, Store):
        clone = Store(m(inst.value), m(inst.pointer))
    elif isinstance(inst, Alloca):
        clone = Alloca(inst.allocated_type, inst.count, inst.name)
    elif isinstance(inst, GetElementPtr):
        clone = GetElementPtr(m(inst.base), m(inst.index), inst.name)
    elif isinstance(inst, Branch):
        clone = Branch(m(inst.condition), block_map[inst.then_block],
                       block_map[inst.else_block])
    elif isinstance(inst, Jump):
        clone = Jump(block_map[inst.target])
    elif isinstance(inst, Ret):
        clone = Ret(m(inst.value) if inst.value is not None else None)
    elif isinstance(inst, Call):
        clone = Call(inst.callee, [m(a) for a in inst.operands], inst.type, inst.name)
    elif isinstance(inst, Phi):
        clone = Phi(inst.type, inst.name)
    elif isinstance(inst, Cast):
        clone = Cast(inst.opcode, m(inst.value), inst.type, inst.name)
    elif isinstance(inst, Select):
        clone = Select(m(inst.condition), m(inst.true_value), m(inst.false_value),
                       inst.name)
    else:
        raise TypeError(f"cannot clone instruction of type {type(inst).__name__}")

    clone.location = inst.location
    clone.metadata = dict(inst.metadata)
    return clone


def clone_function(module: Module, source: Function, new_name: str,
                   extra_params: Optional[Sequence[Tuple[Type, str]]] = None) -> Function:
    """Deep-copy *source* into a new function named *new_name*.

    Parameters
    ----------
    module:
        The module the clone is added to.
    source:
        The function to copy (must be a definition).
    new_name:
        Name of the clone.
    extra_params:
        Additional ``(type, name)`` parameters appended to the clone's
        signature.  The clone's body does not reference them; callers (the
        instrumentation pass) insert uses afterwards.
    """
    if source.is_declaration:
        raise ValueError(f"cannot clone declaration @{source.name}")
    extra = list(extra_params or [])
    new_type = FunctionType(
        source.return_type,
        list(source.ftype.param_types) + [t for t, _ in extra],
    )
    arg_names = [a.name for a in source.args] + [n for _, n in extra]
    clone = module.create_function(new_name, new_type, arg_names)
    clone.metadata = dict(source.metadata)
    clone.source_file = source.source_file

    value_map: Dict[Value, Value] = {}
    for old_arg, new_arg in zip(source.args, clone.args):
        value_map[old_arg] = new_arg

    block_map: Dict[BasicBlock, BasicBlock] = {}
    for block in source.blocks:
        block_map[block] = clone.add_block(block.name)

    phi_pairs: List[Tuple[Phi, Phi]] = []
    for block in source.blocks:
        new_block = block_map[block]
        for inst in block.instructions:
            new_inst = clone_instruction(inst, value_map, block_map)
            if isinstance(inst, Phi):
                phi_pairs.append((inst, new_inst))  # fill incoming later
                new_block.insert(len(new_block.phis()), new_inst)
                new_inst.parent = new_block
            else:
                new_block.append(new_inst)
            value_map[inst] = new_inst

    # Now that every value has a clone, wire up phi incoming lists.
    for old_phi, new_phi in phi_pairs:
        for value, block in old_phi.incoming:
            new_phi.add_incoming(_map_value(value, value_map), block_map[block])

    # Internal name counters must not collide with existing names.
    clone._next_value_id = source._next_value_id
    clone._next_block_id = source._next_block_id
    return clone
