"""Loop vectorisation (cost-model annotation form).

A full loop vectoriser rewrites the IR with vector types; for this
reproduction what matters is how vectorisation changes *performance
accounting* -- how many machine operations the backend issues per loop
iteration -- because that is what separates the X60's theoretical 25.6
GFLOP/s roof from what the kernel actually achieves.  The pass therefore
performs the legality analysis a vectoriser would (innermost loop, no calls,
no unanalysable loop-carried dependences except recognised reductions) and
annotates every instruction of a vectorisable loop body with the chosen
vector width.  The target lowering in :mod:`repro.compiler.targets` consumes
the annotation: an annotated ``fmul``/``fadd``/``load`` retires as one vector
machine op every *width* iterations instead of one scalar op per iteration.

Semantics are unchanged -- the execution engine still computes every element
-- which also means the Roofline instrumentation's IR-level operation counts
are identical whether or not the loop vectorises, exactly as in the paper
(operational intensity is a property of the program, not of the codegen).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.compiler.analysis.loops import Loop, LoopInfo
from repro.compiler.ir.instructions import (
    Alloca,
    BinaryOp,
    Call,
    GetElementPtr,
    Instruction,
    Load,
    Store,
)
from repro.compiler.ir.module import Function
from repro.compiler.ir.values import Value
from repro.compiler.transforms.pass_manager import FunctionPass

#: Metadata key set on every instruction of a vectorised loop body.
VECTOR_WIDTH_KEY = "mperf.vector_width"
#: Metadata key recording vectorised loop headers on the function.
VECTOR_LOOPS_KEY = "mperf.vector_loops"


class LoopVectorizePass(FunctionPass):
    """Annotate vectorisable innermost loops with a vector width."""

    name = "loop-vectorize"

    def __init__(self, vector_width: int = 8, allow_reductions: bool = True):
        if vector_width < 1:
            raise ValueError("vector_width must be >= 1")
        self.vector_width = vector_width
        self.allow_reductions = allow_reductions
        self._vectorized = 0
        self._rejected_calls = 0
        self._rejected_dependence = 0

    @property
    def statistics(self) -> Dict[str, int]:
        return {
            "vectorized": self._vectorized,
            "rejected_calls": self._rejected_calls,
            "rejected_dependence": self._rejected_dependence,
        }

    # -- legality ---------------------------------------------------------------------

    def _reduction_allocas(self, loop: Loop) -> Set[Value]:
        """Allocas used in a load -> arithmetic -> store reduction pattern.

        The canonical ``sum += a[i] * b[i]`` compiled through allocas becomes

            %v = load float, float* %sum.addr
            ...
            %acc = fadd float %v, %prod
            store float %acc, float* %sum.addr

        which a real vectoriser handles as a reduction.  We recognise the
        pattern structurally: an alloca that is both loaded and stored inside
        the loop, where every stored value is an arithmetic combination that
        (transitively) uses the loaded value.
        """
        loads_by_alloca: Dict[Value, List[Load]] = {}
        stores_by_alloca: Dict[Value, List[Store]] = {}
        for inst in loop.instructions():
            if isinstance(inst, Load) and isinstance(inst.pointer, Alloca):
                loads_by_alloca.setdefault(inst.pointer, []).append(inst)
            elif isinstance(inst, Store) and isinstance(inst.pointer, Alloca):
                stores_by_alloca.setdefault(inst.pointer, []).append(inst)

        reductions: Set[Value] = set()
        for alloca, stores in stores_by_alloca.items():
            loads = loads_by_alloca.get(alloca, [])
            if not loads:
                continue
            if all(self._feeds(load, store.value) for store in stores for load in loads):
                reductions.add(alloca)
        return reductions

    @staticmethod
    def _feeds(source: Value, sink: Value, limit: int = 32) -> bool:
        """Does *source* reach *sink* through arithmetic instructions?"""
        seen: Set[int] = set()
        stack: List[Value] = [sink]
        while stack and len(seen) < limit:
            value = stack.pop()
            if value is source:
                return True
            if id(value) in seen:  # repro-lint: allow[no-id] -- cycle guard for one in-process walk; ids never order or escape
                continue
            seen.add(id(value))  # repro-lint: allow[no-id] -- cycle guard for one in-process walk; ids never order or escape
            if isinstance(value, (BinaryOp,)):
                stack.extend(value.operands)
        return False

    def _loop_is_vectorizable(self, loop: Loop) -> bool:
        if loop.subloops:
            return False  # only innermost loops
        reductions = self._reduction_allocas(loop) if self.allow_reductions else set()
        for inst in loop.instructions():
            if isinstance(inst, Call):
                self._rejected_calls += 1
                return False
            if isinstance(inst, Store) and isinstance(inst.pointer, Alloca):
                # Stores to scalars carried across iterations are loop-carried
                # dependences unless recognised as reductions (or the loop's
                # own induction-variable update).
                if inst.pointer not in reductions and not self._is_induction_update(inst, loop):
                    self._rejected_dependence += 1
                    return False
        return True

    @staticmethod
    def _is_induction_update(store: Store, loop: Loop) -> bool:
        """``i = i + step`` style updates of the loop's induction variable."""
        value = store.value
        if not isinstance(value, BinaryOp) or value.opcode not in ("add", "sub"):
            return False
        for operand in value.operands:
            if isinstance(operand, Load) and operand.pointer is store.pointer:
                return True
        return False

    # -- annotation --------------------------------------------------------------------------

    def run_on_function(self, function: Function) -> bool:
        if function.is_declaration:
            return False
        loop_info = LoopInfo(function)
        changed = False
        vector_loops: Dict[str, int] = dict(
            function.metadata.get(VECTOR_LOOPS_KEY, {})
        )
        for loop in loop_info.all_loops():
            if loop.subloops or not self._loop_is_vectorizable(loop):
                continue
            width = self.vector_width
            for inst in loop.instructions():
                inst.metadata[VECTOR_WIDTH_KEY] = width
            vector_loops[loop.header.name] = width
            self._vectorized += 1
            changed = True
        if vector_loops:
            function.metadata[VECTOR_LOOPS_KEY] = vector_loops
        return changed
