"""The Roofline instrumentation pass (the paper's Section 4.2).

For every function, the pass:

1. identifies top-level loop nests (LoopInfo) and checks they form SESE
   regions (RegionInfo);
2. outlines each such region into ``<func>_loop<N>_outlined`` (CodeExtractor);
3. clones the outlined function into ``<func>_loop<N>_instrumented`` with an
   extra trailing ``i8*`` loop-handle parameter;
4. inserts, at the top of every basic block of the instrumented clone, a call
   to ``mperf_roofline_internal_block_exec(handle, loaded, stored, intops,
   fpops)`` carrying that block's statically known per-execution counts
   (bytes loaded, bytes stored, integer ops, floating-point ops);
5. rewrites the original call site into the two-version dispatch of the
   paper's pseudo-code::

       LoopHandle *LH = mperf_roofline_internal_notify_loop_begin(LI);
       if (mperf_roofline_internal_is_instrumented_profiling())
           f_loop0_instrumented(args..., LH);
       else
           f_loop0_outlined(args...);
       mperf_roofline_internal_notify_loop_end(LH);

Loop metadata (function name, source file/line) is registered in the module's
``mperf.loops`` table keyed by a small integer loop id, which is what the
``notify_loop_begin`` call passes to the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler.analysis.loops import LoopInfo
from repro.compiler.analysis.regions import RegionInfo
from repro.compiler.ir.instructions import BinaryOp, Branch, Call, Jump, Load, Phi, Store
from repro.compiler.ir.module import BasicBlock, Function, Module
from repro.compiler.ir.types import FunctionType, I1, I64, PTR, VOID
from repro.compiler.ir.values import Constant
from repro.compiler.transforms.cloning import clone_function
from repro.compiler.transforms.extractor import CodeExtractor, ExtractionError
from repro.compiler.transforms.pass_manager import ModulePass

#: Module metadata key holding the loop-id -> LoopDescriptor table.
MPERF_LOOPS_KEY = "mperf.loops"

# Runtime entry points (implemented in repro.runtime and dispatched by the VM).
RUNTIME_NOTIFY_BEGIN = "mperf_roofline_internal_notify_loop_begin"
RUNTIME_NOTIFY_END = "mperf_roofline_internal_notify_loop_end"
RUNTIME_IS_INSTRUMENTED = "mperf_roofline_internal_is_instrumented_profiling"
RUNTIME_BLOCK_EXEC = "mperf_roofline_internal_block_exec"

#: Function-name suffixes produced by this pass (skipped on re-runs).
OUTLINED_SUFFIX = "_outlined"
INSTRUMENTED_SUFFIX = "_instrumented"


@dataclass(frozen=True)
class LoopDescriptor:
    """The ``LoopInfo`` struct of the paper's pseudo-code."""

    loop_id: int
    function: str
    filename: str
    line: int
    outlined_name: str
    instrumented_name: str

    def label(self) -> str:
        location = f"{self.filename}:{self.line}" if self.filename else "<unknown>"
        return f"{self.function} loop#{self.loop_id} @ {location}"


@dataclass
class BlockCounts:
    """Static per-execution counts of one basic block."""

    loaded_bytes: int = 0
    stored_bytes: int = 0
    int_ops: int = 0
    fp_ops: int = 0

    @staticmethod
    def of(block: BasicBlock) -> "BlockCounts":
        from repro.compiler.transforms.regpromote import REG_PROMOTED_KEY

        counts = BlockCounts()
        for inst in block.instructions:
            if isinstance(inst, Load):
                if not inst.metadata.get(REG_PROMOTED_KEY):
                    counts.loaded_bytes += inst.loaded_bytes
            elif isinstance(inst, Store):
                if not inst.metadata.get(REG_PROMOTED_KEY):
                    counts.stored_bytes += inst.stored_bytes
            elif isinstance(inst, BinaryOp):
                lanes = inst.element_count
                if inst.is_float_op:
                    counts.fp_ops += lanes
                else:
                    counts.int_ops += lanes
        return counts


class RooflineInstrumentationPass(ModulePass):
    """Outline loop nests and add roofline counting instrumentation."""

    name = "roofline-instrument"

    def __init__(self, only_functions: Optional[List[str]] = None):
        #: Restrict instrumentation to these function names (None = all).
        self.only_functions = only_functions
        self._instrumented_loops = 0
        self._skipped_non_sese = 0

    @property
    def statistics(self) -> Dict[str, int]:
        return {
            "instrumented_loops": self._instrumented_loops,
            "skipped_non_sese": self._skipped_non_sese,
        }

    # -- runtime declarations ----------------------------------------------------------

    @staticmethod
    def declare_runtime(module: Module) -> None:
        module.declare_function(RUNTIME_NOTIFY_BEGIN, FunctionType(PTR, [I64]))
        module.declare_function(RUNTIME_NOTIFY_END, FunctionType(VOID, [PTR]))
        module.declare_function(RUNTIME_IS_INSTRUMENTED, FunctionType(I1, []))
        module.declare_function(
            RUNTIME_BLOCK_EXEC, FunctionType(VOID, [PTR, I64, I64, I64, I64])
        )

    # -- main entry -----------------------------------------------------------------------

    def run_on_module(self, module: Module) -> bool:
        self.declare_runtime(module)
        loops_table: Dict[int, LoopDescriptor] = dict(
            module.metadata.get(MPERF_LOOPS_KEY, {})
        )
        changed = False

        for function in list(module.defined_functions()):
            if self._should_skip(function):
                continue
            changed |= self._instrument_function(module, function, loops_table)

        if loops_table:
            module.metadata[MPERF_LOOPS_KEY] = loops_table
        return changed

    def _should_skip(self, function: Function) -> bool:
        if function.name.endswith(OUTLINED_SUFFIX):
            return True
        if function.name.endswith(INSTRUMENTED_SUFFIX):
            return True
        if function.name.startswith("mperf_roofline_internal"):
            return True
        if self.only_functions is not None and function.name not in self.only_functions:
            return True
        return False

    # -- per-function work --------------------------------------------------------------------

    def _instrument_function(self, module: Module, function: Function,
                             loops_table: Dict[int, LoopDescriptor]) -> bool:
        changed = False
        loop_index = 0
        # Regions are recomputed after each extraction because outlining
        # changes the CFG of the original function.
        while True:
            region_info = RegionInfo(function)
            regions = region_info.top_level_regions()
            non_sese = len(region_info.loop_info.top_level_loops) - len(regions)
            if loop_index == 0:
                self._skipped_non_sese += max(0, non_sese)
            if not regions:
                break
            region = regions[0]
            loop = region.loop
            loop_id = len(loops_table)
            base = f"{function.name}_loop{loop_index}"
            try:
                extraction = CodeExtractor(function, region).extract(
                    f"{base}{OUTLINED_SUFFIX}"
                )
            except ExtractionError:
                self._skipped_non_sese += 1
                break

            instrumented = clone_function(
                module,
                extraction.outlined_function,
                f"{base}{INSTRUMENTED_SUFFIX}",
                extra_params=[(PTR, "mperf.handle")],
            )
            self._add_block_counters(instrumented)

            descriptor = LoopDescriptor(
                loop_id=loop_id,
                function=function.name,
                filename=loop.header_file() or function.source_file,
                line=loop.header_line(),
                outlined_name=extraction.outlined_function.name,
                instrumented_name=instrumented.name,
            )
            loops_table[loop_id] = descriptor

            self._rewrite_call_site(module, function, extraction, instrumented, loop_id)

            self._instrumented_loops += 1
            loop_index += 1
            changed = True
        return changed

    def _add_block_counters(self, instrumented: Function) -> None:
        """Insert the per-block counting call at the top of every block."""
        module = instrumented.parent
        assert module is not None
        block_exec = module.get_function(RUNTIME_BLOCK_EXEC)
        handle = instrumented.args[-1]
        for block in instrumented.blocks:
            counts = BlockCounts.of(block)
            call = Call(
                block_exec,
                [
                    handle,
                    Constant(I64, counts.loaded_bytes),
                    Constant(I64, counts.stored_bytes),
                    Constant(I64, counts.int_ops),
                    Constant(I64, counts.fp_ops),
                ],
                VOID,
            )
            call.metadata["mperf.instrumentation"] = True
            block.insert(len(block.phis()), call)

    def _rewrite_call_site(self, module: Module, function: Function,
                           extraction, instrumented: Function, loop_id: int) -> None:
        """Turn ``call outlined(...)`` into the two-version dispatch."""
        call_block = extraction.call_block
        original_call = extraction.call_instruction
        exit_jump = call_block.terminator
        assert isinstance(exit_jump, Jump)
        exit_target = exit_jump.target

        # Empty the call block; we will rebuild it.
        for inst in list(call_block.instructions):
            call_block.remove(inst)

        notify_begin = module.get_function(RUNTIME_NOTIFY_BEGIN)
        notify_end = module.get_function(RUNTIME_NOTIFY_END)
        is_instrumented = module.get_function(RUNTIME_IS_INSTRUMENTED)

        then_block = function.add_block(function.next_block_name("mperf.instr"))
        else_block = function.add_block(function.next_block_name("mperf.base"))
        join_block = function.add_block(function.next_block_name("mperf.join"))

        handle = Call(notify_begin, [Constant(I64, loop_id)], PTR,
                      name=function.next_value_name("lh"))
        flag = Call(is_instrumented, [], I1, name=function.next_value_name("instr"))
        call_block.append(handle)
        call_block.append(flag)
        call_block.append(Branch(flag, then_block, else_block))

        then_block.append(
            Call(instrumented, list(extraction.inputs) + [handle], VOID)
        )
        then_block.append(Jump(join_block))

        else_block.append(original_call)
        original_call.parent = else_block
        else_block.append(Jump(join_block))

        join_block.append(Call(notify_end, [handle], VOID))
        join_block.append(Jump(exit_target))
