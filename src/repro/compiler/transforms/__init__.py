"""Transformation passes.

The pipeline the toolchain runs (mirroring the paper's "apply our pass late
in the optimization pipeline" guidance):

1. cleanup (constant folding, DCE, CFG simplification),
2. loop vectorisation annotation (the cost-model stand-in for LLVM's
   vectoriser),
3. Roofline instrumentation (outline SESE loop nests, clone, insert counting
   and runtime notification calls).
"""

from repro.compiler.transforms.pass_manager import (
    FunctionPass,
    ModulePass,
    PassManager,
    PassResult,
)
from repro.compiler.transforms.constfold import ConstantFoldPass
from repro.compiler.transforms.dce import DeadCodeEliminationPass
from repro.compiler.transforms.simplifycfg import SimplifyCfgPass
from repro.compiler.transforms.cloning import clone_function
from repro.compiler.transforms.regpromote import PromoteScalarsPass, REG_PROMOTED_KEY
from repro.compiler.transforms.vectorize import LoopVectorizePass
from repro.compiler.transforms.extractor import CodeExtractor, ExtractionResult
from repro.compiler.transforms.roofline_pass import (
    RooflineInstrumentationPass,
    LoopDescriptor,
    MPERF_LOOPS_KEY,
    RUNTIME_NOTIFY_BEGIN,
    RUNTIME_NOTIFY_END,
    RUNTIME_IS_INSTRUMENTED,
    RUNTIME_BLOCK_EXEC,
)
from repro.compiler.transforms.pipeline import (
    default_optimization_pipeline,
    build_roofline_pipeline,
)

__all__ = [
    "FunctionPass",
    "ModulePass",
    "PassManager",
    "PassResult",
    "ConstantFoldPass",
    "DeadCodeEliminationPass",
    "SimplifyCfgPass",
    "clone_function",
    "PromoteScalarsPass",
    "REG_PROMOTED_KEY",
    "LoopVectorizePass",
    "CodeExtractor",
    "ExtractionResult",
    "RooflineInstrumentationPass",
    "LoopDescriptor",
    "MPERF_LOOPS_KEY",
    "RUNTIME_NOTIFY_BEGIN",
    "RUNTIME_NOTIFY_END",
    "RUNTIME_IS_INSTRUMENTED",
    "RUNTIME_BLOCK_EXEC",
    "default_optimization_pipeline",
    "build_roofline_pipeline",
]
