"""Scalar register promotion (cost-model form).

The KernelC frontend keeps every local variable in a stack slot (an alloca),
like Clang at -O0.  The paper's measurements are of -O3 binaries, where the
register allocator keeps induction variables and scalar accumulators in
registers: their loads and stores do not exist in the generated code, do not
touch the cache, and do not contribute to the memory traffic that determines
arithmetic intensity.

Rather than rewriting the IR into SSA (a full mem2reg), this pass performs
the *escape analysis* mem2reg would and marks the loads and stores of
non-escaping scalar slots with ``mperf.reg_promoted`` metadata.  Consumers:

* the Roofline instrumentation's per-block byte counts skip marked accesses,
  so arithmetic intensity reflects real array traffic only;
* the target lowering retires marked accesses as zero machine operations
  (they are register reads/writes in the modelled -O3 build), so the timing
  model and the PMU agree with the counts.

Program semantics are untouched -- the interpreter still goes through memory
-- which keeps results bit-identical while the accounting matches an
optimised build.
"""

from __future__ import annotations

from typing import Dict, List

from repro.compiler.ir.instructions import Alloca, Call, GetElementPtr, Instruction, Load, Store
from repro.compiler.ir.module import Function
from repro.compiler.transforms.pass_manager import FunctionPass

#: Metadata key set on loads/stores of promoted scalar slots.
REG_PROMOTED_KEY = "mperf.reg_promoted"


class PromoteScalarsPass(FunctionPass):
    """Mark accesses to non-escaping scalar allocas as register traffic."""

    name = "promote-scalars"

    def __init__(self) -> None:
        self._promoted_slots = 0
        self._marked_accesses = 0

    @property
    def statistics(self) -> Dict[str, int]:
        return {
            "promoted_slots": self._promoted_slots,
            "marked_accesses": self._marked_accesses,
        }

    @staticmethod
    def _is_promotable(alloca: Alloca, function: Function) -> bool:
        """A slot is promotable when it is scalar and its address never escapes."""
        if alloca.count != 1:
            return False
        if alloca.allocated_type.is_vector:
            return False
        for block in function.blocks:
            for inst in block.instructions:
                if alloca not in inst.operands:
                    continue
                if isinstance(inst, Load) and inst.pointer is alloca:
                    continue
                if isinstance(inst, Store) and inst.pointer is alloca and inst.value is not alloca:
                    continue
                # Any other use -- call argument, GEP base, stored as a value,
                # compared, ... -- means the address escapes.
                return False
        return True

    def run_on_function(self, function: Function) -> bool:
        if function.is_declaration:
            return False
        promotable: List[Alloca] = []
        for block in function.blocks:
            for inst in block.instructions:
                if isinstance(inst, Alloca) and self._is_promotable(inst, function):
                    promotable.append(inst)
        if not promotable:
            return False
        slots = set(promotable)
        changed = False
        for block in function.blocks:
            for inst in block.instructions:
                if isinstance(inst, Load) and inst.pointer in slots:
                    if not inst.metadata.get(REG_PROMOTED_KEY):
                        inst.metadata[REG_PROMOTED_KEY] = True
                        self._marked_accesses += 1
                        changed = True
                elif isinstance(inst, Store) and inst.pointer in slots:
                    if not inst.metadata.get(REG_PROMOTED_KEY):
                        inst.metadata[REG_PROMOTED_KEY] = True
                        self._marked_accesses += 1
                        changed = True
        self._promoted_slots += len(promotable)
        return changed
