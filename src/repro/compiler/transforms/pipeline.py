"""Standard pass pipelines.

Two pipelines are provided:

* :func:`default_optimization_pipeline` -- the "-O" style cleanup +
  vectorisation pipeline, used for baseline (non-instrumented) builds;
* :func:`build_roofline_pipeline` -- the same pipeline with the Roofline
  instrumentation pass appended *last*, matching the paper's choice to apply
  instrumentation late so earlier optimisations cannot distort the counts.
"""

from __future__ import annotations

from typing import List, Optional

from repro.compiler.transforms.constfold import ConstantFoldPass
from repro.compiler.transforms.dce import DeadCodeEliminationPass
from repro.compiler.transforms.pass_manager import PassManager
from repro.compiler.transforms.regpromote import PromoteScalarsPass
from repro.compiler.transforms.roofline_pass import RooflineInstrumentationPass
from repro.compiler.transforms.simplifycfg import SimplifyCfgPass
from repro.compiler.transforms.vectorize import LoopVectorizePass


def default_optimization_pipeline(vector_width: int = 8,
                                  enable_vectorizer: bool = True,
                                  promote_scalars: bool = True,
                                  verify_each: bool = True) -> PassManager:
    """Cleanup + scalar promotion + (optional) vectorisation, no instrumentation."""
    manager = PassManager(verify_each=verify_each)
    manager.add(ConstantFoldPass())
    manager.add(SimplifyCfgPass())
    manager.add(DeadCodeEliminationPass())
    if promote_scalars:
        manager.add(PromoteScalarsPass())
    if enable_vectorizer and vector_width > 1:
        manager.add(LoopVectorizePass(vector_width=vector_width))
    return manager


def build_roofline_pipeline(vector_width: int = 8,
                            enable_vectorizer: bool = True,
                            promote_scalars: bool = True,
                            only_functions: Optional[List[str]] = None,
                            instrument_first: bool = False,
                            verify_each: bool = True) -> PassManager:
    """The full pipeline with Roofline instrumentation.

    ``instrument_first=True`` deliberately mis-orders the pipeline (the
    instrumentation runs before the vectoriser); it exists for the ablation
    study of the paper's "apply the pass late" design choice.
    """
    manager = PassManager(verify_each=verify_each)
    instrumentation = RooflineInstrumentationPass(only_functions=only_functions)
    manager.add(ConstantFoldPass())
    manager.add(SimplifyCfgPass())
    manager.add(DeadCodeEliminationPass())
    if promote_scalars:
        manager.add(PromoteScalarsPass())
    if instrument_first:
        manager.add(instrumentation)
        if enable_vectorizer and vector_width > 1:
            manager.add(LoopVectorizePass(vector_width=vector_width))
    else:
        if enable_vectorizer and vector_width > 1:
            manager.add(LoopVectorizePass(vector_width=vector_width))
        manager.add(instrumentation)
    return manager
