"""Standard pass pipelines.

Two pipelines are provided:

* :func:`default_optimization_pipeline` -- the "-O" style cleanup +
  vectorisation pipeline, used for baseline (non-instrumented) builds;
* :func:`build_roofline_pipeline` -- the same pipeline with the Roofline
  instrumentation pass appended *last*, matching the paper's choice to apply
  instrumentation late so earlier optimisations cannot distort the counts.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.compiler.transforms.constfold import ConstantFoldPass
from repro.compiler.transforms.dce import DeadCodeEliminationPass
from repro.compiler.transforms.pass_manager import PassManager
from repro.compiler.transforms.regpromote import PromoteScalarsPass
from repro.compiler.transforms.roofline_pass import RooflineInstrumentationPass
from repro.compiler.transforms.simplifycfg import SimplifyCfgPass
from repro.compiler.transforms.vectorize import LoopVectorizePass

#: Environment flag forcing per-pass IR verification in every pipeline
#: (equivalent to ``ProfileSpec.verify_ir=True``, but global).
VERIFY_IR_ENV = "REPRO_VERIFY_IR"


def verify_ir_requested() -> bool:
    """Whether the :data:`VERIFY_IR_ENV` debug flag is set (and truthy)."""
    return os.environ.get(VERIFY_IR_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


def resolve_verify_each(verify_each: Optional[bool]) -> bool:
    """An explicit choice wins; ``None`` defers to :data:`VERIFY_IR_ENV`.

    Either way the module is verified once after the pipeline completes
    (:meth:`PassManager.run`); per-pass verification exists to *localise*
    which transform broke an invariant, at ~number-of-passes times the cost.
    """
    if verify_each is not None:
        return verify_each
    return verify_ir_requested()


def default_optimization_pipeline(vector_width: int = 8,
                                  enable_vectorizer: bool = True,
                                  promote_scalars: bool = True,
                                  verify_each: Optional[bool] = None,
                                  ) -> PassManager:
    """Cleanup + scalar promotion + (optional) vectorisation, no instrumentation."""
    manager = PassManager(verify_each=resolve_verify_each(verify_each))
    manager.add(ConstantFoldPass())
    manager.add(SimplifyCfgPass())
    manager.add(DeadCodeEliminationPass())
    if promote_scalars:
        manager.add(PromoteScalarsPass())
    if enable_vectorizer and vector_width > 1:
        manager.add(LoopVectorizePass(vector_width=vector_width))
    return manager


def build_roofline_pipeline(vector_width: int = 8,
                            enable_vectorizer: bool = True,
                            promote_scalars: bool = True,
                            only_functions: Optional[List[str]] = None,
                            instrument_first: bool = False,
                            verify_each: Optional[bool] = None) -> PassManager:
    """The full pipeline with Roofline instrumentation.

    ``instrument_first=True`` deliberately mis-orders the pipeline (the
    instrumentation runs before the vectoriser); it exists for the ablation
    study of the paper's "apply the pass late" design choice.
    """
    manager = PassManager(verify_each=resolve_verify_each(verify_each))
    instrumentation = RooflineInstrumentationPass(only_functions=only_functions)
    manager.add(ConstantFoldPass())
    manager.add(SimplifyCfgPass())
    manager.add(DeadCodeEliminationPass())
    if promote_scalars:
        manager.add(PromoteScalarsPass())
    if instrument_first:
        manager.add(instrumentation)
        if enable_vectorizer and vector_width > 1:
            manager.add(LoopVectorizePass(vector_width=vector_width))
    else:
        if enable_vectorizer and vector_width > 1:
            manager.add(LoopVectorizePass(vector_width=vector_width))
        manager.add(instrumentation)
    return manager
