"""LLVM-like compiler infrastructure.

The paper's second contribution is a compiler pass that instruments loop
nests at the IR level to count memory traffic and arithmetic operations
without any PMU involvement.  This package provides the infrastructure that
pass needs, built from scratch:

* :mod:`repro.compiler.ir` -- a typed, SSA-style intermediate representation
  with a builder, textual printer/parser and verifier.
* :mod:`repro.compiler.analysis` -- CFG utilities, dominators, natural-loop
  detection (LoopInfo) and single-entry/single-exit region analysis
  (RegionInfo).
* :mod:`repro.compiler.transforms` -- the pass manager, cleanup passes, the
  loop vectorisation annotator, the CodeExtractor outliner and the
  Roofline instrumentation pass itself.
* :mod:`repro.compiler.frontend` -- a small C-like kernel language (lexer,
  parser, semantic analysis, IR code generation) so the paper's tiled matmul
  kernel can be compiled from source text.
* :mod:`repro.compiler.targets` -- per-target lowering cost models (RV64GC,
  RV64GCV, x86-64 AVX2) used by the execution engine.
"""

from repro.compiler.ir.module import Module, Function, BasicBlock
from repro.compiler.ir.builder import IRBuilder
from repro.compiler.ir.verifier import verify_module, VerificationError

__all__ = [
    "Module",
    "Function",
    "BasicBlock",
    "IRBuilder",
    "verify_module",
    "VerificationError",
]
