"""Analyses: CFG utilities, dominators, natural loops, SESE regions."""

from repro.compiler.analysis.cfg import (
    predecessors,
    successors,
    reverse_postorder,
    reachable_blocks,
)
from repro.compiler.analysis.dominators import DominatorTree
from repro.compiler.analysis.loops import Loop, LoopInfo
from repro.compiler.analysis.regions import Region, RegionInfo

__all__ = [
    "predecessors",
    "successors",
    "reverse_postorder",
    "reachable_blocks",
    "DominatorTree",
    "Loop",
    "LoopInfo",
    "Region",
    "RegionInfo",
]
