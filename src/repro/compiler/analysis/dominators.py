"""Dominator tree computation (Cooper-Harvey-Kennedy algorithm).

Natural-loop detection needs dominators to recognise back edges; the SESE
region check needs them to prove single entry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.compiler.analysis.cfg import predecessors, reverse_postorder
from repro.compiler.ir.module import BasicBlock, Function


class DominatorTree:
    """Immediate-dominator tree for one function."""

    def __init__(self, function: Function):
        self.function = function
        self._rpo = reverse_postorder(function)
        self._rpo_index: Dict[BasicBlock, int] = {
            block: i for i, block in enumerate(self._rpo)
        }
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._children: Dict[BasicBlock, List[BasicBlock]] = {}
        self._compute()

    # -- computation ----------------------------------------------------------------

    def _compute(self) -> None:
        if not self._rpo:
            return
        entry = self._rpo[0]
        preds = predecessors(self.function)
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}

        changed = True
        while changed:
            changed = False
            for block in self._rpo[1:]:
                candidates = [p for p in preds[block] if p in idom and p in self._rpo_index]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = self._intersect(new_idom, other, idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        idom[entry] = None
        self.idom = idom
        for block, parent in idom.items():
            if parent is not None:
                self._children.setdefault(parent, []).append(block)

    def _intersect(self, a: BasicBlock, b: BasicBlock,
                   idom: Dict[BasicBlock, Optional[BasicBlock]]) -> BasicBlock:
        index = self._rpo_index
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    # -- queries -----------------------------------------------------------------------

    @property
    def root(self) -> BasicBlock:
        return self._rpo[0]

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(block)

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return list(self._children.get(block, []))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when *a* dominates *b* (reflexive)."""
        if a is b:
            return True
        current: Optional[BasicBlock] = self.idom.get(b)
        while current is not None:
            if current is a:
                return True
            if current is self.idom.get(current):
                break
            current = self.idom.get(current)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominators_of(self, block: BasicBlock) -> List[BasicBlock]:
        """All dominators of *block*, from the block itself up to the entry."""
        out = [block]
        current = self.idom.get(block)
        while current is not None and current not in out:
            out.append(current)
            current = self.idom.get(current)
        return out

    def dominance_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Compute the dominance frontier of every block."""
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {
            block: set() for block in self._rpo
        }
        preds = predecessors(self.function)
        for block in self._rpo:
            if len(preds[block]) < 2:
                continue
            for pred in preds[block]:
                if pred not in self._rpo_index:
                    continue
                runner = pred
                while runner is not None and runner is not self.idom.get(block):
                    frontier[runner].add(block)
                    runner = self.idom.get(runner)
        return frontier
