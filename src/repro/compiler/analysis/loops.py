"""Natural-loop detection (LoopInfo).

The Roofline instrumentation pass operates on *loop nests*: it asks LoopInfo
for the top-level loops of each function and instruments each one as a unit.
Loops are discovered the classical way -- a back edge is an edge whose target
dominates its source; the natural loop of a back edge is the set of blocks
that can reach the source without passing through the header.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.compiler.analysis.cfg import predecessors
from repro.compiler.analysis.dominators import DominatorTree
from repro.compiler.ir.instructions import Instruction
from repro.compiler.ir.module import BasicBlock, Function


class Loop:
    """One natural loop: a header plus its body blocks, with nesting links."""

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.parent: Optional["Loop"] = None
        self.subloops: List["Loop"] = []
        #: Blocks inside the loop with an edge leaving the loop.
        self.exiting_blocks: List[BasicBlock] = []
        #: Blocks outside the loop that are targets of edges from inside.
        self.exit_blocks: List[BasicBlock] = []
        #: The unique predecessor of the header from outside the loop, if any.
        self.preheader: Optional[BasicBlock] = None
        #: Blocks with a back edge to the header.
        self.latches: List[BasicBlock] = []

    # -- structure queries ----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Nesting depth: 1 for a top-level loop."""
        depth = 1
        parent = self.parent
        while parent is not None:
            depth += 1
            parent = parent.parent
        return depth

    def contains_block(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def contains_loop(self, other: "Loop") -> bool:
        return other.blocks <= self.blocks

    def innermost_loops(self) -> List["Loop"]:
        """All innermost (leaf) loops in this loop's nest, including itself."""
        if not self.subloops:
            return [self]
        leaves: List[Loop] = []
        for sub in self.subloops:
            leaves.extend(sub.innermost_loops())
        return leaves

    def nest_size(self) -> int:
        """Number of loops in this nest (self plus all transitive subloops)."""
        return 1 + sum(sub.nest_size() for sub in self.subloops)

    def instructions(self) -> List[Instruction]:
        out: List[Instruction] = []
        for block in self.blocks:
            out.extend(block.instructions)
        return out

    @property
    def single_exit_block(self) -> Optional[BasicBlock]:
        unique = set(self.exit_blocks)
        return next(iter(unique)) if len(unique) == 1 else None

    def header_line(self) -> int:
        """Best-effort source line of the loop (from header instructions)."""
        for inst in self.header.instructions:
            if inst.location:
                return inst.location.line
        return 0

    def header_file(self) -> str:
        for inst in self.header.instructions:
            if inst.location:
                return inst.location.filename
        return ""

    def __repr__(self) -> str:
        return (
            f"Loop(header={self.header.name}, blocks={len(self.blocks)}, "
            f"depth={self.depth}, subloops={len(self.subloops)})"
        )


class LoopInfo:
    """Loop forest of one function."""

    def __init__(self, function: Function, domtree: Optional[DominatorTree] = None):
        self.function = function
        self.domtree = domtree or DominatorTree(function)
        self.top_level_loops: List[Loop] = []
        self._loop_of_block: Dict[BasicBlock, Loop] = {}
        self._discover()

    # -- discovery ----------------------------------------------------------------------

    def _discover(self) -> None:
        if self.function.is_declaration:
            return
        preds = predecessors(self.function)

        # Find back edges and build one loop per header.
        loops_by_header: Dict[BasicBlock, Loop] = {}
        for block in self.function.blocks:
            for successor in block.successors():
                if self.domtree.dominates(successor, block):
                    loop = loops_by_header.setdefault(successor, Loop(successor))
                    loop.latches.append(block)
                    self._collect_body(loop, block, preds)

        loops = list(loops_by_header.values())

        # Establish nesting: a loop is a subloop of the smallest loop that
        # strictly contains it.
        loops.sort(key=lambda l: len(l.blocks))
        for i, inner in enumerate(loops):
            for outer in loops[i + 1:]:
                if outer is not inner and inner.blocks < outer.blocks:
                    inner.parent = outer
                    outer.subloops.append(inner)
                    break
        self.top_level_loops = [l for l in loops if l.parent is None]

        # Map blocks to their innermost loop.
        for loop in sorted(loops, key=lambda l: len(l.blocks), reverse=True):
            for block in loop.blocks:
                self._loop_of_block[block] = loop

        for loop in loops:
            self._compute_exits(loop)
            self._compute_preheader(loop, preds)

    def _collect_body(self, loop: Loop, latch: BasicBlock,
                      preds: Dict[BasicBlock, List[BasicBlock]]) -> None:
        """Blocks that reach *latch* without passing through the header."""
        stack = [latch]
        while stack:
            block = stack.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            for pred in preds.get(block, []):
                if pred not in loop.blocks:
                    stack.append(pred)

    def _compute_exits(self, loop: Loop) -> None:
        exiting: List[BasicBlock] = []
        exits: List[BasicBlock] = []
        for block in loop.blocks:
            for successor in block.successors():
                if successor not in loop.blocks:
                    if block not in exiting:
                        exiting.append(block)
                    if successor not in exits:
                        exits.append(successor)
        loop.exiting_blocks = exiting
        loop.exit_blocks = exits

    def _compute_preheader(self, loop: Loop,
                           preds: Dict[BasicBlock, List[BasicBlock]]) -> None:
        outside_preds = [
            p for p in preds.get(loop.header, []) if p not in loop.blocks
        ]
        if len(outside_preds) == 1:
            candidate = outside_preds[0]
            # A true preheader has the header as its only successor.
            if candidate.successors() == [loop.header]:
                loop.preheader = candidate

    # -- queries --------------------------------------------------------------------------

    def all_loops(self) -> List[Loop]:
        out: List[Loop] = []

        def walk(loop: Loop) -> None:
            out.append(loop)
            for sub in loop.subloops:
                walk(sub)

        for loop in self.top_level_loops:
            walk(loop)
        return out

    def loop_for_block(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing *block*, if any."""
        return self._loop_of_block.get(block)

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.loop_for_block(block)
        return loop.depth if loop else 0

    def is_loop_header(self, block: BasicBlock) -> bool:
        loop = self._loop_of_block.get(block)
        return loop is not None and loop.header is block

    def __repr__(self) -> str:
        return (
            f"LoopInfo({self.function.name}, {len(self.top_level_loops)} top-level "
            f"loops, {len(self.all_loops())} total)"
        )
