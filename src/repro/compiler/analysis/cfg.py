"""Control-flow graph utilities."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.compiler.ir.module import BasicBlock, Function


def successors(block: BasicBlock) -> List[BasicBlock]:
    """Successor blocks of *block* (order follows the terminator)."""
    return block.successors()


def predecessors(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map every block of *function* to its predecessor list."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            if succ in preds:
                preds[succ].append(block)
    return preds


def reachable_blocks(function: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry block."""
    if function.is_declaration:
        return set()
    seen: Set[BasicBlock] = set()
    stack = [function.entry_block]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        stack.extend(block.successors())
    return seen


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder of a DFS from the entry block.

    Reverse postorder visits every block before its successors (except along
    back edges), which is the order dominator computation wants.
    """
    if function.is_declaration:
        return []
    visited: Set[BasicBlock] = set()
    postorder: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        visited.add(block)
        while stack:
            current, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                postorder.append(current)
                stack.pop()

    visit(function.entry_block)
    return list(reversed(postorder))
