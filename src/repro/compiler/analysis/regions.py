"""Single-entry/single-exit (SESE) region analysis.

The instrumentation pass only outlines loop nests that form a SESE region:
control enters only through the loop preheader/header and leaves only to a
single exit block.  That property is what makes the CodeExtractor's job clean
-- the outlined function has exactly one call site and one return path, so
wrapping it in ``notify_loop_begin`` / ``notify_loop_end`` calls is sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.compiler.analysis.cfg import predecessors
from repro.compiler.analysis.dominators import DominatorTree
from repro.compiler.analysis.loops import Loop, LoopInfo
from repro.compiler.ir.module import BasicBlock, Function


@dataclass
class Region:
    """A single-entry/single-exit region of the CFG.

    ``entry`` is the unique block through which control enters the region
    (the loop header), ``exit`` is the unique block *outside* the region that
    every path leaving the region reaches first.
    """

    entry: BasicBlock
    exit: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)
    loop: Optional[Loop] = None

    @property
    def size(self) -> int:
        return len(self.blocks)

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def __repr__(self) -> str:
        return (
            f"Region(entry={self.entry.name}, exit={self.exit.name}, "
            f"blocks={len(self.blocks)})"
        )


class RegionInfo:
    """Finds SESE regions corresponding to loops of a function."""

    def __init__(self, function: Function,
                 loop_info: Optional[LoopInfo] = None,
                 domtree: Optional[DominatorTree] = None):
        self.function = function
        self.domtree = domtree or DominatorTree(function)
        self.loop_info = loop_info or LoopInfo(function, self.domtree)
        self._preds = predecessors(function)

    def region_for_loop(self, loop: Loop) -> Optional[Region]:
        """Return the SESE region of *loop*, or None when it is not SESE.

        Requirements checked:

        * single entry: the only edges into the loop from outside target the
          header (no jumps into the middle of the loop);
        * single exit: every edge leaving the loop targets the same outside
          block;
        * no returns inside the loop (a return is an extra exit);
        * the header dominates every block of the loop (true for natural
          loops by construction, re-checked defensively).
        """
        # Single entry.
        for block in loop.blocks:
            if block is loop.header:
                continue
            for pred in self._preds.get(block, []):
                if pred not in loop.blocks:
                    return None

        # No returns inside.
        for block in loop.blocks:
            term = block.terminator
            if term is not None and term.opcode == "ret":
                return None

        # Single exit.
        exit_block = loop.single_exit_block
        if exit_block is None:
            return None

        # Header dominates all blocks.
        for block in loop.blocks:
            if not self.domtree.dominates(loop.header, block):
                return None

        return Region(entry=loop.header, exit=exit_block,
                      blocks=set(loop.blocks), loop=loop)

    def top_level_regions(self) -> List[Region]:
        """SESE regions of every top-level loop (the instrumentation targets)."""
        regions: List[Region] = []
        for loop in self.loop_info.top_level_loops:
            region = self.region_for_loop(loop)
            if region is not None:
                regions.append(region)
        return regions

    def instrumentable_loops(self) -> List[Loop]:
        """Top-level loops whose region is SESE (i.e. can be outlined)."""
        return [r.loop for r in self.top_level_regions() if r.loop is not None]
