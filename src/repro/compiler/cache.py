"""Process-wide memoized compilation for execution-engine consumers.

Every thread of a sharded SMP workload -- and every repeated session run --
compiles the identical KernelC source for the identical lowering
configuration, so one compile per ``(source, lowering configuration)``
serves them all.  The cached module is immutable after the optimization
pipeline runs, and execution engines keep all per-run decode state on the
engine (value environments, predecoded thunks, pc maps), so sharing one
module instance across harts is safe -- and keeps pc assignment (a
deterministic walk of the module) identical on every hart, which the
fast-dispatch differential suites rely on.

Compilation is also where static certification happens: after the pipeline
the static block-delta classifier (:mod:`repro.analysis.blockdelta`) stamps
per-block eligibility verdicts onto every function's metadata for the
platform's target lowering.  The execution engine cross-checks its runtime
classification against these verdicts on every block it decodes, so a
divergence between the static model and the engine fails loudly instead of
silently changing retirement behaviour.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.blockdelta import certify_module, is_certified
from repro.compiler.frontend import compile_source
from repro.compiler.ir.module import Module
from repro.compiler.ir.verifier import verify_module
from repro.compiler.targets.registry import target_for_platform
from repro.compiler.transforms import default_optimization_pipeline
from repro.compiler.transforms.pipeline import verify_ir_requested
from repro.platforms.descriptors import PlatformDescriptor
from repro.telemetry import span as _span

_MODULE_CACHE: Dict[Tuple[str, str, str, int, bool], Module] = {}

# Plain process-wide tallies (observability only): the telemetry run
# collector folds before/after deltas into the registry at run boundaries,
# so the memoization fast path stays a dict lookup plus one int add.
_CACHE_HITS = 0
_CACHE_MISSES = 0


def cache_stats() -> Dict[str, int]:
    """Process-wide compile-cache hit/miss tallies."""
    return {"hits": _CACHE_HITS, "misses": _CACHE_MISSES}


def compile_source_cached(source: str, filename: str,
                          descriptor: PlatformDescriptor,
                          enable_vectorizer: bool,
                          verify_ir: bool = False) -> Module:
    """Compile *source* through the default pipeline, memoized per platform
    lowering configuration (march, vector lanes, vectorizer toggle).

    ``verify_ir`` (or the ``REPRO_VERIFY_IR`` environment flag) runs the IR
    verifier between pipeline passes instead of once at the end; on a cache
    hit the cached module is re-verified once, so the flag still gives a
    verified module without recompiling.
    """
    global _CACHE_HITS, _CACHE_MISSES
    verify_each = verify_ir or verify_ir_requested()
    key = (source, filename, descriptor.march, descriptor.vector.sp_lanes(),
           enable_vectorizer)
    module = _MODULE_CACHE.get(key)
    if module is None:
        _CACHE_MISSES += 1
        with _span("compile_kernel", cat="compiler", filename=filename,
                   march=descriptor.march):
            module = compile_source(source, filename)
            pipeline = default_optimization_pipeline(
                vector_width=descriptor.vector.sp_lanes(),
                enable_vectorizer=enable_vectorizer,
                verify_each=verify_each,
            )
            pipeline.run(module)
        _MODULE_CACHE[key] = module
    else:
        _CACHE_HITS += 1
        if verify_each:
            verify_module(module)
    target = target_for_platform(descriptor)
    if not is_certified(module, target):
        with _span("lower", cat="compiler", filename=filename,
                   march=descriptor.march):
            certify_module(module, target)
    return module
