"""Process-wide memoized compilation for execution-engine consumers.

Every thread of a sharded SMP workload -- and every repeated session run --
compiles the identical KernelC source for the identical lowering
configuration, so one compile per ``(source, lowering configuration)``
serves them all.  The cached module is immutable after the optimization
pipeline runs, and execution engines keep all per-run decode state on the
engine (value environments, predecoded thunks, pc maps), so sharing one
module instance across harts is safe -- and keeps pc assignment (a
deterministic walk of the module) identical on every hart, which the
fast-dispatch differential suites rely on.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.compiler.frontend import compile_source
from repro.compiler.ir.module import Module
from repro.compiler.transforms import default_optimization_pipeline
from repro.platforms.descriptors import PlatformDescriptor

_MODULE_CACHE: Dict[Tuple[str, str, str, int, bool], Module] = {}


def compile_source_cached(source: str, filename: str,
                          descriptor: PlatformDescriptor,
                          enable_vectorizer: bool) -> Module:
    """Compile *source* through the default pipeline, memoized per platform
    lowering configuration (march, vector lanes, vectorizer toggle)."""
    key = (source, filename, descriptor.march, descriptor.vector.sp_lanes(),
           enable_vectorizer)
    module = _MODULE_CACHE.get(key)
    if module is None:
        module = compile_source(source, filename)
        pipeline = default_optimization_pipeline(
            vector_width=descriptor.vector.sp_lanes(),
            enable_vectorizer=enable_vectorizer,
        )
        pipeline.run(module)
        _MODULE_CACHE[key] = module
    return module
