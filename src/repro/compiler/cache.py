"""Process-wide memoized compilation for execution-engine consumers.

Every thread of a sharded SMP workload -- and every repeated session run --
compiles the identical KernelC source for the identical lowering
configuration, so one compile per ``(source, lowering configuration)``
serves them all.  The cached module is immutable after the optimization
pipeline runs, and execution engines keep all per-run decode state on the
engine (value environments, predecoded thunks, pc maps), so sharing one
module instance across harts is safe -- and keeps pc assignment (a
deterministic walk of the module) identical on every hart, which the
fast-dispatch differential suites rely on.

The memo key is the *full* canonical lowering configuration
(:func:`repro.cache.keys.module_key`): march alone is free-form while
target selection keys on ``(arch, vector.supported, vlen_bits)``, so two
descriptors agreeing on march and lanes but differing elsewhere (vector
extension present vs absent at equal lane count, a different VLEN) must
never share a module.

Below the in-process memo sits the disk store
(:mod:`repro.cache.store`): a memo miss consults the content-addressed
store before compiling, and a fresh compile (or a certification for a new
target) writes the pickled module back, so daemon restarts, ``run_many``
fleets and repeated CLI invocations start hot.  A disk-served module is
byte-identical in every export to a cold compile (the differential suite
enforces it); disk lookups still count as memo *misses* in
:func:`cache_stats` so per-run telemetry deltas stay comparable between
cold and warm processes, with disk activity tallied separately.

Compilation is also where static certification happens: after the pipeline
the static block-delta classifier (:mod:`repro.analysis.blockdelta`) stamps
per-block eligibility verdicts onto every function's metadata for the
platform's target lowering.  The execution engine cross-checks its runtime
classification against these verdicts on every block it decodes, so a
divergence between the static model and the engine fails loudly instead of
silently changing retirement behaviour.
"""

from __future__ import annotations

import pickle
from typing import Dict

from repro import faults as _faults
from repro.analysis.blockdelta import certify_module_cached, is_certified
from repro.cache import keys as cache_keys
from repro.cache.store import default_store
from repro.compiler.frontend import compile_source
from repro.compiler.ir.module import Module
from repro.compiler.ir.verifier import verify_module
from repro.compiler.targets.registry import target_for_platform
from repro.compiler.transforms import default_optimization_pipeline
from repro.compiler.transforms.pipeline import verify_ir_requested
from repro.platforms.descriptors import PlatformDescriptor
from repro.telemetry import span as _span

#: Memoized modules by their full content address (source + filename +
#: canonical lowering config); see :func:`module_cache_key`.
_MODULE_CACHE: Dict[str, Module] = {}

# Plain process-wide tallies (observability only): the telemetry run
# collector folds before/after deltas into the registry at run boundaries,
# so the memoization fast path stays a dict lookup plus one int add.
_CACHE_HITS = 0
_CACHE_MISSES = 0
_DISK_HITS = 0


def cache_stats() -> Dict[str, int]:
    """Process-wide compile-cache tallies.

    ``hits``/``misses`` are in-process memo outcomes (a disk-served module
    counts as a miss: the memo did not have it); ``disk_hits`` counts how
    many of those misses skipped compilation by loading the module from the
    disk store.
    """
    return {"hits": _CACHE_HITS, "misses": _CACHE_MISSES,
            "disk_hits": _DISK_HITS}


def reset_stats() -> None:
    """Zero the tallies (pool initializers call this after warmup, so
    ``cache_stats()`` -- and everything derived from it, like ``/metrics``
    -- attributes only request-driven compiles)."""
    global _CACHE_HITS, _CACHE_MISSES, _DISK_HITS
    _CACHE_HITS = 0
    _CACHE_MISSES = 0
    _DISK_HITS = 0


def clear_memory_cache() -> None:
    """Drop every memoized module (tests simulating a cold process)."""
    _MODULE_CACHE.clear()


def module_cache_key(source: str, filename: str,
                     descriptor: PlatformDescriptor,
                     enable_vectorizer: bool) -> str:
    """The content address of one compiled module -- the *same* key the
    disk store files it under, covering the full lowering configuration."""
    return cache_keys.module_key(source, filename, descriptor,
                                 enable_vectorizer)


def compile_source_cached(source: str, filename: str,
                          descriptor: PlatformDescriptor,
                          enable_vectorizer: bool,
                          verify_ir: bool = False) -> Module:
    """Compile *source* through the default pipeline, memoized per full
    lowering configuration (memory first, then the disk store).

    ``verify_ir`` (or the ``REPRO_VERIFY_IR`` environment flag) runs the IR
    verifier between pipeline passes instead of once at the end; on a cache
    hit -- memory or disk -- the cached module is re-verified once, so the
    flag still gives a verified module without recompiling.
    """
    global _CACHE_HITS, _CACHE_MISSES, _DISK_HITS
    verify_each = verify_ir or verify_ir_requested()
    key = module_cache_key(source, filename, descriptor, enable_vectorizer)
    store = default_store()
    module = _MODULE_CACHE.get(key)
    compiled = False
    if module is not None:
        _CACHE_HITS += 1
        if verify_each:
            verify_module(module)
    else:
        _CACHE_MISSES += 1
        if store is not None:
            payload = store.get("module", key)
            if payload is not None:
                try:
                    with _span("load_kernel", cat="compiler",
                               filename=filename, march=descriptor.march):
                        module = pickle.loads(payload)
                except Exception:
                    # A valid envelope holding an unloadable pickle (e.g. a
                    # different repo revision's IR classes): recompile.
                    module = None
                else:
                    _DISK_HITS += 1
                    if verify_each:
                        verify_module(module)
        if module is None:
            # Chaos hook: fires only on a true compile (memo and disk both
            # missed), so a cached module never turns into a failure.
            _faults.fail("compiler.compile_fail")
            with _span("compile_kernel", cat="compiler", filename=filename,
                       march=descriptor.march):
                module = compile_source(source, filename)
                pipeline = default_optimization_pipeline(
                    vector_width=descriptor.vector.sp_lanes(),
                    enable_vectorizer=enable_vectorizer,
                    verify_each=verify_each,
                )
                pipeline.run(module)
            compiled = True
        _MODULE_CACHE[key] = module
    target = target_for_platform(descriptor)
    certified = False
    if not is_certified(module, target):
        with _span("lower", cat="compiler", filename=filename,
                   march=descriptor.march):
            certify_module_cached(module, target, module_digest=key,
                                  store=store)
        certified = True
    if store is not None and (compiled or certified):
        # Persist fresh work -- including a new target's verdicts on an
        # already-stored module, so the next process loads it fully
        # certified.
        store.put("module", key, pickle.dumps(module, protocol=4))
    return module
