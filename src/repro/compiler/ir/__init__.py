"""The intermediate representation: types, values, instructions, modules."""

from repro.compiler.ir import types
from repro.compiler.ir.types import (
    Type,
    VoidType,
    IntType,
    FloatType,
    PointerType,
    VectorType,
    FunctionType,
    VOID,
    I1,
    I8,
    I16,
    I32,
    I64,
    F32,
    F64,
    PTR,
)
from repro.compiler.ir.values import Value, Constant, Argument, UndefValue
from repro.compiler.ir.instructions import (
    Instruction,
    BinaryOp,
    CompareOp,
    Load,
    Store,
    Alloca,
    GetElementPtr,
    Branch,
    Jump,
    Ret,
    Call,
    Phi,
    Cast,
    Select,
)
from repro.compiler.ir.module import Module, Function, BasicBlock
from repro.compiler.ir.builder import IRBuilder
from repro.compiler.ir.printer import print_module, print_function
from repro.compiler.ir.parser import parse_module, IRParseError
from repro.compiler.ir.verifier import verify_module, verify_function, VerificationError

__all__ = [
    "types",
    "Type", "VoidType", "IntType", "FloatType", "PointerType", "VectorType",
    "FunctionType",
    "VOID", "I1", "I8", "I16", "I32", "I64", "F32", "F64", "PTR",
    "Value", "Constant", "Argument", "UndefValue",
    "Instruction", "BinaryOp", "CompareOp", "Load", "Store", "Alloca",
    "GetElementPtr", "Branch", "Jump", "Ret", "Call", "Phi", "Cast", "Select",
    "Module", "Function", "BasicBlock", "IRBuilder",
    "print_module", "print_function",
    "parse_module", "IRParseError",
    "verify_module", "verify_function", "VerificationError",
]
