"""IR values: the base class, constants, arguments and undef.

Every operand of every instruction is a :class:`Value`.  Instructions are
themselves values (their result), which is what makes def-use chains work.
"""

from __future__ import annotations

from typing import List, Optional

from repro.compiler.ir.types import FloatType, IntType, Type


class Value:
    """Anything that can be used as an operand."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name
        #: Instructions that use this value as an operand.
        self.uses: List["Value"] = []

    def add_use(self, user: "Value") -> None:
        self.uses.append(user)

    def remove_use(self, user: "Value") -> None:
        if user in self.uses:
            self.uses.remove(user)

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def short_name(self) -> str:
        """How this value is referred to as an operand in printed IR."""
        return f"%{self.name}" if self.name else "%<unnamed>"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.type} {self.short_name()})"


class Constant(Value):
    """A literal integer or floating-point constant."""

    def __init__(self, type_: Type, value):
        super().__init__(type_)
        if isinstance(type_, IntType):
            value = type_.wrap(int(value))
        elif isinstance(type_, FloatType):
            value = float(value)
        self.value = value

    def short_name(self) -> str:
        if isinstance(self.type, FloatType):
            return repr(float(self.value))
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.type} {self.short_name()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))  # repro-lint: allow[no-hash] -- in-process dict/set key for value-equal constants; never emitted or ordered on


class UndefValue(Value):
    """An undefined value of a given type."""

    def short_name(self) -> str:
        return "undef"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int):
        super().__init__(type_, name)
        self.index = index

    def __repr__(self) -> str:
        return f"Argument({self.type} %{self.name} #{self.index})"


def const_int(value: int, type_: Optional[IntType] = None) -> Constant:
    """Integer constant helper (defaults to i64)."""
    from repro.compiler.ir.types import I64
    return Constant(type_ or I64, value)


def const_float(value: float, type_: Optional[FloatType] = None) -> Constant:
    """Floating-point constant helper (defaults to f32)."""
    from repro.compiler.ir.types import F32
    return Constant(type_ or F32, value)
