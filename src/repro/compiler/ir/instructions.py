"""IR instructions.

The instruction set is a compact, LLVM-flavoured subset chosen so that the
Roofline instrumentation pass can see everything it needs to count: loads and
stores carry the byte size of the accessed type, arithmetic is split into
integer and floating-point opcodes, and control flow is explicit (``br``,
``jmp``, ``ret``) so loop analysis has a real CFG to work on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.compiler.ir.types import (
    FloatType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VOID,
    I1,
)
from repro.compiler.ir.values import Constant, Value


#: Integer binary opcodes.
INT_BINARY_OPS = frozenset(
    {"add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
     "and", "or", "xor", "shl", "lshr", "ashr"}
)
#: Floating-point binary opcodes.
FP_BINARY_OPS = frozenset({"fadd", "fsub", "fmul", "fdiv", "frem"})
#: All binary opcodes.
BINARY_OPS = INT_BINARY_OPS | FP_BINARY_OPS

#: icmp predicates.
ICMP_PREDICATES = frozenset(
    {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
)
#: fcmp predicates (ordered comparisons only; unordered NaN handling is not
#: needed by any workload in this reproduction).
FCMP_PREDICATES = frozenset({"oeq", "one", "olt", "ole", "ogt", "oge"})

#: Cast opcodes.
CAST_OPS = frozenset(
    {"trunc", "zext", "sext", "fptrunc", "fpext", "fptosi", "sitofp",
     "bitcast", "ptrtoint", "inttoptr"}
)


class SourceLocation:
    """A (file, line, column) triple attached to instructions by the frontend.

    The instrumentation pass copies this into the ``LoopInfo`` handed to the
    runtime, which is how the final roofline report can say *which* source
    loop a dot on the plot corresponds to.
    """

    __slots__ = ("filename", "line", "column")

    def __init__(self, filename: str = "", line: int = 0, column: int = 0):
        self.filename = filename
        self.line = line
        self.column = column

    def __bool__(self) -> bool:
        return bool(self.filename) or self.line > 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"SourceLocation({self})"


class Instruction(Value):
    """Base class of all instructions.

    An instruction is also a :class:`Value` (its result), enabling def-use
    chains.  Instructions keep an explicit operand list and register
    themselves as users of their operands.
    """

    opcode: str = "<abstract>"

    def __init__(self, type_: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type_, name)
        self.operands: List[Value] = []
        self.parent = None  # type: Optional["BasicBlock"]
        self.location = SourceLocation()
        self.metadata: Dict[str, object] = {}
        for operand in operands:
            self.add_operand(operand)

    # -- operand management -----------------------------------------------------

    def add_operand(self, value: Value) -> None:
        self.operands.append(value)
        value.add_use(self)

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        old.remove_use(self)
        self.operands[index] = value
        value.add_use(self)

    def replace_uses_of(self, old: Value, new: Value) -> int:
        """Replace every occurrence of *old* in this instruction's operands."""
        replaced = 0
        for i, operand in enumerate(self.operands):
            if operand is old:
                self.set_operand(i, new)
                replaced += 1
        return replaced

    def drop_operands(self) -> None:
        for operand in self.operands:
            operand.remove_use(self)
        self.operands.clear()

    # -- classification -----------------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Branch, Jump, Ret))

    @property
    def has_side_effects(self) -> bool:
        return isinstance(self, (Store, Call, Ret, Branch, Jump))

    def successors(self) -> List["BasicBlock"]:
        """Successor blocks (empty for non-terminators and ``ret``)."""
        return []

    def __repr__(self) -> str:
        ops = ", ".join(o.short_name() for o in self.operands)
        prefix = f"%{self.name} = " if self.name and not self.type.is_void else ""
        return f"{prefix}{self.opcode} {ops}"


class BinaryOp(Instruction):
    """Integer and floating-point binary arithmetic."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPS:
            raise ValueError(f"unknown binary opcode {opcode!r}")
        if lhs.type != rhs.type:
            raise TypeError(
                f"binary op {opcode} operand types differ: {lhs.type} vs {rhs.type}"
            )
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = opcode

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    @property
    def is_float_op(self) -> bool:
        return self.opcode in FP_BINARY_OPS

    @property
    def element_count(self) -> int:
        """Number of scalar lanes this op processes (1 for scalar types)."""
        return self.type.count if isinstance(self.type, VectorType) else 1


class CompareOp(Instruction):
    """Integer (``icmp``) and floating-point (``fcmp``) comparisons."""

    def __init__(self, opcode: str, predicate: str, lhs: Value, rhs: Value,
                 name: str = ""):
        if opcode not in ("icmp", "fcmp"):
            raise ValueError("compare opcode must be icmp or fcmp")
        preds = ICMP_PREDICATES if opcode == "icmp" else FCMP_PREDICATES
        if predicate not in preds:
            raise ValueError(f"invalid {opcode} predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise TypeError(f"{opcode} operand types differ: {lhs.type} vs {rhs.type}")
        super().__init__(I1, [lhs, rhs], name)
        self.opcode = opcode
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def __repr__(self) -> str:
        return (
            f"%{self.name} = {self.opcode} {self.predicate} "
            f"{self.lhs.short_name()}, {self.rhs.short_name()}"
        )


class Load(Instruction):
    """Load a value of the pointee type from a pointer."""

    opcode = "load"

    def __init__(self, pointer: Value, name: str = ""):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"load requires a pointer operand, got {pointer.type}")
        super().__init__(pointer.type.pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def loaded_bytes(self) -> int:
        return self.type.size_bytes()


class Store(Instruction):
    """Store a value through a pointer."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"store requires a pointer operand, got {pointer.type}")
        if pointer.type.pointee != value.type:
            raise TypeError(
                f"store type mismatch: storing {value.type} through {pointer.type}"
            )
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    @property
    def stored_bytes(self) -> int:
        return self.value.type.size_bytes()


class Alloca(Instruction):
    """Stack allocation of one value (or a small array) of a given type."""

    opcode = "alloca"

    def __init__(self, allocated_type: Type, count: int = 1, name: str = ""):
        if count < 1:
            raise ValueError("alloca count must be >= 1")
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type
        self.count = count

    @property
    def allocated_bytes(self) -> int:
        return self.allocated_type.size_bytes() * self.count


class GetElementPtr(Instruction):
    """Pointer arithmetic: ``base + index * sizeof(pointee)``.

    A single-index form is sufficient because the kernel language flattens
    multi-dimensional indexing explicitly (``A[i * n + k]``), exactly as the
    paper's example kernel does.
    """

    opcode = "getelementptr"

    def __init__(self, base: Value, index: Value, name: str = ""):
        if not isinstance(base.type, PointerType):
            raise TypeError(f"getelementptr requires a pointer base, got {base.type}")
        if not isinstance(index.type, IntType):
            raise TypeError(f"getelementptr index must be an integer, got {index.type}")
        super().__init__(base.type, [base, index], name)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    @property
    def element_bytes(self) -> int:
        return self.type.pointee.size_bytes()


class Branch(Instruction):
    """Conditional branch."""

    opcode = "br"

    def __init__(self, condition: Value, then_block: "BasicBlock",
                 else_block: "BasicBlock"):
        if condition.type != I1:
            raise TypeError(f"branch condition must be i1, got {condition.type}")
        super().__init__(VOID, [condition])
        self.then_block = then_block
        self.else_block = else_block

    @property
    def condition(self) -> Value:
        return self.operands[0]

    def successors(self) -> List["BasicBlock"]:
        return [self.then_block, self.else_block]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.then_block is old:
            self.then_block = new
        if self.else_block is old:
            self.else_block = new

    def __repr__(self) -> str:
        return (
            f"br {self.condition.short_name()}, "
            f"label %{self.then_block.name}, label %{self.else_block.name}"
        )


class Jump(Instruction):
    """Unconditional branch."""

    opcode = "jmp"

    def __init__(self, target: "BasicBlock"):
        super().__init__(VOID, [])
        self.target = target

    def successors(self) -> List["BasicBlock"]:
        return [self.target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.target is old:
            self.target = new

    def __repr__(self) -> str:
        return f"jmp label %{self.target.name}"


class Ret(Instruction):
    """Return (optionally with a value)."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def __repr__(self) -> str:
        if self.value is None:
            return "ret void"
        return f"ret {self.value.type} {self.value.short_name()}"


class Call(Instruction):
    """Direct call to a function (by object or by name for runtime externals)."""

    opcode = "call"

    def __init__(self, callee, args: Sequence[Value], return_type: Type,
                 name: str = ""):
        super().__init__(return_type, list(args), name)
        self.callee = callee

    @property
    def callee_name(self) -> str:
        return self.callee if isinstance(self.callee, str) else self.callee.name

    @property
    def args(self) -> List[Value]:
        return list(self.operands)

    def __repr__(self) -> str:
        args = ", ".join(a.short_name() for a in self.operands)
        prefix = f"%{self.name} = " if self.name and not self.type.is_void else ""
        return f"{prefix}call {self.type} @{self.callee_name}({args})"


class Phi(Instruction):
    """SSA phi node."""

    opcode = "phi"

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(type_, [], name)
        self.incoming: List[Tuple[Value, "BasicBlock"]] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise TypeError(
                f"phi incoming type {value.type} does not match node type {self.type}"
            )
        self.add_operand(value)
        self.incoming.append((value, block))

    def incoming_for(self, block: "BasicBlock") -> Optional[Value]:
        for value, pred in self.incoming:
            if pred is block:
                return value
        return None

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"[ {v.short_name()}, %{b.name} ]" for v, b in self.incoming
        )
        return f"%{self.name} = phi {self.type} {pairs}"


class Cast(Instruction):
    """Type conversions (trunc/zext/sext/fptosi/sitofp/bitcast/...)."""

    def __init__(self, opcode: str, value: Value, to_type: Type, name: str = ""):
        if opcode not in CAST_OPS:
            raise ValueError(f"unknown cast opcode {opcode!r}")
        super().__init__(to_type, [value], name)
        self.opcode = opcode

    @property
    def value(self) -> Value:
        return self.operands[0]

    def __repr__(self) -> str:
        return (
            f"%{self.name} = {self.opcode} {self.value.type} "
            f"{self.value.short_name()} to {self.type}"
        )


class Select(Instruction):
    """``select cond, a, b`` -- the ternary operator."""

    opcode = "select"

    def __init__(self, condition: Value, true_value: Value, false_value: Value,
                 name: str = ""):
        if condition.type != I1:
            raise TypeError("select condition must be i1")
        if true_value.type != false_value.type:
            raise TypeError("select arm types differ")
        super().__init__(true_value.type, [condition, true_value, false_value], name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]
