"""Parser for the textual IR produced by :mod:`repro.compiler.ir.printer`.

The parser is used by tests (round-trip properties), by the examples (so IR
can be stored as text fixtures) and by the CLI (``miniperf roofline
--ir file.ll``).  It performs two passes per function: first it creates every
basic block (so forward branch references resolve), then it parses the
instructions, deferring phi-incoming value resolution to the end of the
function since phis may reference values defined later.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.compiler.ir.instructions import (
    Alloca,
    BINARY_OPS,
    BinaryOp,
    Branch,
    Call,
    CAST_OPS,
    Cast,
    CompareOp,
    GetElementPtr,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.compiler.ir.module import BasicBlock, Function, Module
from repro.compiler.ir.types import (
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VOID,
    named_type,
)
from repro.compiler.ir.values import Constant, Value


class IRParseError(Exception):
    """Raised on malformed textual IR."""

    def __init__(self, message: str, line_number: int = 0, line: str = ""):
        location = f" (line {line_number}: {line.strip()!r})" if line_number else ""
        super().__init__(message + location)
        self.line_number = line_number


_DEFINE_RE = re.compile(
    r"^define\s+(?P<ret>.+?)\s+@(?P<name>[\w.$-]+)\s*\((?P<params>.*)\)\s*\{$"
)
_DECLARE_RE = re.compile(
    r"^declare\s+(?P<ret>.+?)\s+@(?P<name>[\w.$-]+)\s*\((?P<params>.*)\)$"
)
_LABEL_RE = re.compile(r"^(?P<name>[\w.$-]+):$")
_ASSIGN_RE = re.compile(r"^%(?P<name>[\w.$-]+)\s*=\s*(?P<rest>.+)$")


def _parse_type(text: str) -> Type:
    """Parse a type string such as ``i64``, ``float*``, ``<8 x float>*``."""
    text = text.strip()
    pointer_depth = 0
    while text.endswith("*"):
        pointer_depth += 1
        text = text[:-1].strip()
    if text.startswith("<") and text.endswith(">"):
        inner = text[1:-1]
        match = re.match(r"^\s*(\d+)\s*x\s*(.+)$", inner)
        if not match:
            raise IRParseError(f"malformed vector type {text!r}")
        base: Type = VectorType(_parse_type(match.group(2)), int(match.group(1)))
    else:
        named = named_type(text)
        if named is None:
            raise IRParseError(f"unknown type {text!r}")
        base = named
    for _ in range(pointer_depth):
        base = PointerType(base)
    return base


def _split_commas(text: str) -> List[str]:
    """Split on top-level commas (ignoring commas inside <> and [])."""
    parts: List[str] = []
    depth = 0
    current = []
    for char in text:
        if char in "<[(":
            depth += 1
        elif char in ">])":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class _FunctionParser:
    """Parses the body of one ``define``."""

    def __init__(self, function: Function, lines: List[Tuple[int, str]]):
        self.function = function
        self.lines = lines
        self.values: Dict[str, Value] = {arg.name: arg for arg in function.args}
        self.blocks: Dict[str, BasicBlock] = {}
        #: Deferred phi incoming entries: (phi, value_text, value_type, block_name).
        self._pending_phis: List[Tuple[Phi, str, Type, str]] = []

    # -- operand resolution -------------------------------------------------------

    def _resolve(self, text: str, type_: Type, line_number: int) -> Value:
        text = text.strip()
        if text.startswith("%"):
            name = text[1:]
            value = self.values.get(name)
            if value is None:
                raise IRParseError(f"use of undefined value %{name}", line_number, text)
            return value
        # Constant literal.
        if isinstance(type_, FloatType):
            return Constant(type_, float(text))
        if isinstance(type_, IntType):
            return Constant(type_, int(text, 0))
        if isinstance(type_, PointerType) and text in ("null", "0"):
            return Constant(IntType(64), 0)
        raise IRParseError(
            f"cannot parse constant {text!r} of type {type_}", line_number, text
        )

    def _typed_operand(self, text: str, line_number: int) -> Tuple[Type, Value]:
        text = text.strip()
        match = re.match(r"^(?P<type>[^%]+?)\s+(?P<val>[%\-\w.$][\w.$%\-+e]*)$", text)
        if not match:
            raise IRParseError(f"malformed typed operand {text!r}", line_number, text)
        type_ = _parse_type(match.group("type"))
        return type_, self._resolve(match.group("val"), type_, line_number)

    def _define_value(self, name: str, value: Value, line_number: int) -> None:
        if name in self.values:
            raise IRParseError(f"redefinition of %{name}", line_number)
        value.name = name
        self.values[name] = value

    def _block(self, name: str, line_number: int) -> BasicBlock:
        block = self.blocks.get(name)
        if block is None:
            raise IRParseError(f"reference to unknown block %{name}", line_number)
        return block

    # -- main loop ---------------------------------------------------------------------

    def parse(self) -> None:
        # Pass 1: create all blocks.
        current: Optional[str] = None
        block_lines: Dict[str, List[Tuple[int, str]]] = {}
        order: List[str] = []
        for line_number, line in self.lines:
            stripped = line.strip()
            if not stripped or stripped.startswith(";"):
                continue
            label = _LABEL_RE.match(stripped)
            if label:
                current = label.group("name")
                if current in block_lines:
                    raise IRParseError(f"duplicate block label {current}", line_number)
                block_lines[current] = []
                order.append(current)
                continue
            if current is None:
                raise IRParseError("instruction before first block label", line_number, line)
            block_lines[current].append((line_number, stripped))

        for name in order:
            block = self.function.add_block(name)
            self.blocks[name] = block

        # Pass 2: parse instructions.
        for name in order:
            block = self.blocks[name]
            for line_number, text in block_lines[name]:
                self._parse_instruction(block, text, line_number)

        # Pass 3: resolve deferred phi incomings.
        for phi, value_text, type_, block_name in self._pending_phis:
            value = self._resolve(value_text, type_, 0)
            phi.add_incoming(value, self._block(block_name, 0))

    # -- individual instructions -----------------------------------------------------------

    def _parse_instruction(self, block: BasicBlock, text: str, line_number: int) -> None:
        assign = _ASSIGN_RE.match(text)
        result_name: Optional[str] = None
        body = text
        if assign:
            result_name = assign.group("name")
            body = assign.group("rest").strip()

        inst = self._build(body, result_name, line_number)
        if inst is None:
            return
        if result_name is not None and not inst.type.is_void:
            self._define_value(result_name, inst, line_number)
        if isinstance(inst, Phi):
            block.insert(len(block.phis()), inst)
            inst.parent = block
        else:
            block.append(inst)

    def _build(self, body: str, result_name: Optional[str], line_number: int):
        opcode = body.split(None, 1)[0]

        if opcode in BINARY_OPS:
            rest = body[len(opcode):].strip()
            parts = _split_commas(rest)
            if len(parts) != 2:
                raise IRParseError("binary op expects two operands", line_number, body)
            type_text, lhs_text = parts[0].rsplit(" ", 1)
            type_ = _parse_type(type_text)
            lhs = self._resolve(lhs_text, type_, line_number)
            rhs = self._resolve(parts[1], type_, line_number)
            return BinaryOp(opcode, lhs, rhs)

        if opcode in ("icmp", "fcmp"):
            match = re.match(
                rf"^{opcode}\s+(?P<pred>\w+)\s+(?P<type>\S+(?:\s*\*+)?)\s+"
                r"(?P<lhs>\S+),\s*(?P<rhs>\S+)$", body)
            if not match:
                raise IRParseError(f"malformed {opcode}", line_number, body)
            type_ = _parse_type(match.group("type"))
            lhs = self._resolve(match.group("lhs"), type_, line_number)
            rhs = self._resolve(match.group("rhs"), type_, line_number)
            return CompareOp(opcode, match.group("pred"), lhs, rhs)

        if opcode == "load":
            rest = body[len("load"):].strip()
            parts = _split_commas(rest)
            if len(parts) != 2:
                raise IRParseError("load expects '<type>, <typed pointer>'", line_number, body)
            _, pointer = self._typed_operand(parts[1], line_number)
            return Load(pointer)

        if opcode == "store":
            rest = body[len("store"):].strip()
            parts = _split_commas(rest)
            if len(parts) != 2:
                raise IRParseError("store expects two typed operands", line_number, body)
            _, value = self._typed_operand(parts[0], line_number)
            _, pointer = self._typed_operand(parts[1], line_number)
            return Store(value, pointer)

        if opcode == "alloca":
            rest = body[len("alloca"):].strip()
            parts = _split_commas(rest)
            type_ = _parse_type(parts[0])
            count = int(parts[1]) if len(parts) > 1 else 1
            return Alloca(type_, count)

        if opcode == "getelementptr":
            rest = body[len("getelementptr"):].strip()
            parts = _split_commas(rest)
            if len(parts) != 3:
                raise IRParseError(
                    "getelementptr expects '<elem type>, <typed base>, <typed index>'",
                    line_number, body)
            _, base = self._typed_operand(parts[1], line_number)
            _, index = self._typed_operand(parts[2], line_number)
            return GetElementPtr(base, index)

        if opcode == "br":
            match = re.match(
                r"^br\s+i1\s+(?P<cond>\S+),\s*label\s+%(?P<then>[\w.$-]+),"
                r"\s*label\s+%(?P<else>[\w.$-]+)$", body)
            if not match:
                raise IRParseError("malformed br", line_number, body)
            cond = self._resolve(match.group("cond"), IntType(1), line_number)
            return Branch(cond, self._block(match.group("then"), line_number),
                          self._block(match.group("else"), line_number))

        if opcode == "jmp":
            match = re.match(r"^jmp\s+label\s+%(?P<target>[\w.$-]+)$", body)
            if not match:
                raise IRParseError("malformed jmp", line_number, body)
            return Jump(self._block(match.group("target"), line_number))

        if opcode == "ret":
            rest = body[len("ret"):].strip()
            if rest == "void":
                return Ret(None)
            _, value = self._typed_operand(rest, line_number)
            return Ret(value)

        if opcode == "call":
            match = re.match(
                r"^call\s+(?P<ret>.+?)\s+@(?P<callee>[\w.$-]+)\s*\((?P<args>.*)\)$",
                body)
            if not match:
                raise IRParseError("malformed call", line_number, body)
            return_type = (
                VOID if match.group("ret").strip() == "void"
                else _parse_type(match.group("ret"))
            )
            args: List[Value] = []
            arg_text = match.group("args").strip()
            if arg_text:
                for part in _split_commas(arg_text):
                    _, value = self._typed_operand(part, line_number)
                    args.append(value)
            module = self.function.parent
            callee: object = match.group("callee")
            if module is not None and module.has_function(match.group("callee")):
                callee = module.get_function(match.group("callee"))
            return Call(callee, args, return_type)

        if opcode == "phi":
            match = re.match(r"^phi\s+(?P<type>\S+(?:\s*\*+)?)\s+(?P<rest>.+)$", body)
            if not match:
                raise IRParseError("malformed phi", line_number, body)
            type_ = _parse_type(match.group("type"))
            phi = Phi(type_)
            for pair in re.finditer(
                r"\[\s*(?P<val>[^,\]]+)\s*,\s*%(?P<block>[\w.$-]+)\s*\]",
                match.group("rest"),
            ):
                self._pending_phis.append(
                    (phi, pair.group("val").strip(), type_, pair.group("block"))
                )
            return phi

        if opcode in CAST_OPS:
            match = re.match(
                rf"^{opcode}\s+(?P<from>.+?)\s+(?P<val>\S+)\s+to\s+(?P<to>.+)$", body)
            if not match:
                raise IRParseError(f"malformed {opcode}", line_number, body)
            from_type = _parse_type(match.group("from"))
            value = self._resolve(match.group("val"), from_type, line_number)
            return Cast(opcode, value, _parse_type(match.group("to")))

        if opcode == "select":
            rest = body[len("select"):].strip()
            parts = _split_commas(rest)
            if len(parts) != 3:
                raise IRParseError("malformed select", line_number, body)
            cond_match = re.match(r"^i1\s+(\S+)$", parts[0])
            if not cond_match:
                raise IRParseError("select condition must be i1", line_number, body)
            cond = self._resolve(cond_match.group(1), IntType(1), line_number)
            _, true_value = self._typed_operand(parts[1], line_number)
            _, false_value = self._typed_operand(parts[2], line_number)
            return Select(cond, true_value, false_value)

        raise IRParseError(f"unknown instruction opcode {opcode!r}", line_number, body)


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse a full module from text."""
    module = Module(name)
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        raw = lines[i]
        stripped = raw.strip()
        i += 1
        if not stripped or stripped.startswith(";"):
            match = re.match(r'^;\s*module\s*=\s*"(?P<name>[^"]+)"', stripped)
            if match:
                module.name = match.group("name")
            continue

        declare = _DECLARE_RE.match(stripped)
        if declare:
            return_type = (
                VOID if declare.group("ret").strip() == "void"
                else _parse_type(declare.group("ret"))
            )
            param_types = [
                _parse_type(p) for p in _split_commas(declare.group("params")) if p
            ]
            module.declare_function(
                declare.group("name"), FunctionType(return_type, param_types)
            )
            continue

        define = _DEFINE_RE.match(stripped)
        if define:
            return_type = (
                VOID if define.group("ret").strip() == "void"
                else _parse_type(define.group("ret"))
            )
            param_types: List[Type] = []
            arg_names: List[str] = []
            params_text = define.group("params").strip()
            if params_text:
                for part in _split_commas(params_text):
                    match = re.match(r"^(?P<type>.+?)\s+%(?P<name>[\w.$-]+)$", part)
                    if not match:
                        raise IRParseError(f"malformed parameter {part!r}", i)
                    param_types.append(_parse_type(match.group("type")))
                    arg_names.append(match.group("name"))
            function = module.create_function(
                define.group("name"), FunctionType(return_type, param_types), arg_names
            )
            # Collect body lines until the closing brace.
            body: List[Tuple[int, str]] = []
            while i < len(lines):
                body_line = lines[i]
                i += 1
                if body_line.strip() == "}":
                    break
                body.append((i, body_line))
            else:
                raise IRParseError(f"unterminated function @{function.name}", i)
            _FunctionParser(function, body).parse()
            continue

        raise IRParseError(f"unexpected top-level line: {stripped!r}", i, stripped)
    return module
