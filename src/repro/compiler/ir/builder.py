"""IRBuilder: convenience API for constructing IR.

Mirrors LLVM's ``IRBuilder``: it holds an insertion point (a basic block) and
exposes one method per instruction kind.  Values receive automatically
generated names unless the caller provides one, and the current source
location (set by the frontend) is stamped onto every created instruction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.compiler.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    GetElementPtr,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    SourceLocation,
    Store,
)
from repro.compiler.ir.module import BasicBlock, Function
from repro.compiler.ir.types import FloatType, IntType, Type
from repro.compiler.ir.values import Constant, Value


class IRBuilder:
    """Builds instructions at an insertion point."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self._block = block
        self._location = SourceLocation()

    # -- insertion point ------------------------------------------------------------

    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise RuntimeError("IRBuilder has no insertion point")
        return self._block

    @property
    def function(self) -> Function:
        return self.block.parent

    def set_insertion_point(self, block: BasicBlock) -> None:
        self._block = block

    def set_location(self, filename: str, line: int, column: int = 0) -> None:
        self._location = SourceLocation(filename, line, column)

    @property
    def location(self) -> SourceLocation:
        return self._location

    def _emit(self, instruction: Instruction, name_hint: str = "") -> Instruction:
        if not instruction.type.is_void and not instruction.name:
            instruction.name = self.function.next_value_name(name_hint)
        instruction.location = self._location
        self.block.append(instruction)
        return instruction

    # -- constants --------------------------------------------------------------------

    @staticmethod
    def const(type_: Type, value) -> Constant:
        return Constant(type_, value)

    # -- arithmetic -------------------------------------------------------------------

    def binary(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._emit(BinaryOp(opcode, lhs, rhs, name), name_hint=opcode[:3])

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("srem", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("fdiv", lhs, rhs, name)

    # -- comparisons -------------------------------------------------------------------

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> CompareOp:
        return self._emit(CompareOp("icmp", predicate, lhs, rhs, name), name_hint="cmp")

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> CompareOp:
        return self._emit(CompareOp("fcmp", predicate, lhs, rhs, name), name_hint="fcmp")

    # -- memory ------------------------------------------------------------------------

    def alloca(self, type_: Type, count: int = 1, name: str = "") -> Alloca:
        return self._emit(Alloca(type_, count, name), name_hint="ptr")

    def load(self, pointer: Value, name: str = "") -> Load:
        return self._emit(Load(pointer, name), name_hint="ld")

    def store(self, value: Value, pointer: Value) -> Store:
        return self._emit(Store(value, pointer))

    def gep(self, base: Value, index: Value, name: str = "") -> GetElementPtr:
        return self._emit(GetElementPtr(base, index, name), name_hint="gep")

    # -- control flow --------------------------------------------------------------------

    def br(self, condition: Value, then_block: BasicBlock,
           else_block: BasicBlock) -> Branch:
        return self._emit(Branch(condition, then_block, else_block))

    def jmp(self, target: BasicBlock) -> Jump:
        return self._emit(Jump(target))

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._emit(Ret(value))

    def call(self, callee: Union[Function, str], args: Sequence[Value],
             return_type: Optional[Type] = None, name: str = "") -> Call:
        if return_type is None:
            if isinstance(callee, Function):
                return_type = callee.return_type
            else:
                raise ValueError("return_type is required when calling by name")
        return self._emit(Call(callee, args, return_type, name), name_hint="call")

    def phi(self, type_: Type, name: str = "") -> Phi:
        phi = Phi(type_, name or self.function.next_value_name("phi"))
        phi.location = self._location
        # Phis must stay at the top of the block.
        insert_at = 0
        for i, inst in enumerate(self.block.instructions):
            if isinstance(inst, Phi):
                insert_at = i + 1
            else:
                break
        self.block.insert(insert_at, phi)
        return phi

    # -- conversions -------------------------------------------------------------------------

    def cast(self, opcode: str, value: Value, to_type: Type, name: str = "") -> Cast:
        return self._emit(Cast(opcode, value, to_type, name), name_hint="cast")

    def sitofp(self, value: Value, to_type: FloatType, name: str = "") -> Cast:
        return self.cast("sitofp", value, to_type, name)

    def fptosi(self, value: Value, to_type: IntType, name: str = "") -> Cast:
        return self.cast("fptosi", value, to_type, name)

    def sext(self, value: Value, to_type: IntType, name: str = "") -> Cast:
        return self.cast("sext", value, to_type, name)

    def trunc(self, value: Value, to_type: IntType, name: str = "") -> Cast:
        return self.cast("trunc", value, to_type, name)

    def fpext(self, value: Value, to_type: FloatType, name: str = "") -> Cast:
        return self.cast("fpext", value, to_type, name)

    def fptrunc(self, value: Value, to_type: FloatType, name: str = "") -> Cast:
        return self.cast("fptrunc", value, to_type, name)

    def select(self, condition: Value, true_value: Value, false_value: Value,
               name: str = "") -> Select:
        return self._emit(Select(condition, true_value, false_value, name),
                          name_hint="sel")
