"""Modules, functions and basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.compiler.ir.instructions import Instruction, Phi
from repro.compiler.ir.types import FunctionType, Type
from repro.compiler.ir.values import Argument, Value


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        # Blocks are values only so that branches can reference them uniformly.
        from repro.compiler.ir.types import VOID
        super().__init__(VOID, name)
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- instruction management ----------------------------------------------------

    def append(self, instruction: Instruction) -> Instruction:
        if self.terminator is not None:
            raise ValueError(
                f"block {self.name} already has a terminator; cannot append "
                f"{instruction.opcode}"
            )
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        instruction.parent = self
        self.instructions.insert(index, instruction)
        return instruction

    def remove(self, instruction: Instruction) -> None:
        self.instructions.remove(instruction)
        instruction.parent = None

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []

    def phis(self) -> List[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def short_name(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"BasicBlock({self.name}, {len(self.instructions)} instructions)"


class Function(Value):
    """A function: a signature plus a list of basic blocks.

    A function with no blocks is a *declaration* -- used for the runtime
    entry points (``mperf_roofline_internal_*``) the instrumentation pass
    inserts calls to.
    """

    def __init__(self, name: str, ftype: FunctionType,
                 arg_names: Optional[Sequence[str]] = None,
                 parent: Optional["Module"] = None):
        super().__init__(ftype, name)
        self.ftype = ftype
        self.parent = parent
        self.blocks: List[BasicBlock] = []
        self.metadata: Dict[str, object] = {}
        self.source_file: str = ""
        names = list(arg_names) if arg_names else [
            f"arg{i}" for i in range(len(ftype.param_types))
        ]
        if len(names) != len(ftype.param_types):
            raise ValueError("argument name count does not match signature")
        self.args: List[Argument] = [
            Argument(t, n, i) for i, (t, n) in enumerate(zip(ftype.param_types, names))
        ]
        self._next_value_id = 0
        self._next_block_id = 0

    # -- naming helpers --------------------------------------------------------------

    def next_value_name(self, hint: str = "") -> str:
        name = f"{hint}{self._next_value_id}" if hint else f"v{self._next_value_id}"
        self._next_value_id += 1
        return name

    def next_block_name(self, hint: str = "bb") -> str:
        name = f"{hint}{self._next_block_id}"
        self._next_block_id += 1
        return name

    # -- structure --------------------------------------------------------------------

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def return_type(self) -> Type:
        return self.ftype.return_type

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str = "") -> BasicBlock:
        block = BasicBlock(name or self.next_block_name(), parent=self)
        self.blocks.append(block)
        return block

    def insert_block_after(self, existing: BasicBlock, name: str = "") -> BasicBlock:
        block = BasicBlock(name or self.next_block_name(), parent=self)
        index = self.blocks.index(existing)
        self.blocks.insert(index + 1, block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def block_by_name(self, name: str) -> Optional[BasicBlock]:
        for block in self.blocks:
            if block.name == name:
                return block
        return None

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def arg_by_name(self, name: str) -> Optional[Argument]:
        for arg in self.args:
            if arg.name == name:
                return arg
        return None

    def short_name(self) -> str:
        return f"@{self.name}"

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"Function({kind} {self.ftype.return_type} @{self.name}, {len(self.blocks)} blocks)"


class Module:
    """A compilation unit: an ordered collection of functions."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.metadata: Dict[str, object] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"function {function.name!r} already exists in module")
        function.parent = self
        self.functions[function.name] = function
        return function

    def create_function(self, name: str, ftype: FunctionType,
                        arg_names: Optional[Sequence[str]] = None) -> Function:
        return self.add_function(Function(name, ftype, arg_names, parent=self))

    def declare_function(self, name: str, ftype: FunctionType) -> Function:
        """Get-or-create a declaration (no body) for an external function."""
        existing = self.functions.get(name)
        if existing is not None:
            return existing
        return self.add_function(Function(name, ftype, parent=self))

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"module {self.name!r} has no function {name!r}")

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def remove_function(self, name: str) -> None:
        self.functions.pop(name, None)

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def declarations(self) -> List[Function]:
        return [f for f in self.functions.values() if f.is_declaration]

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __len__(self) -> int:
        return len(self.functions)

    def __repr__(self) -> str:
        return f"Module({self.name!r}, {len(self.functions)} functions)"
