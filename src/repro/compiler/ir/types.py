"""IR type system.

A deliberately small, LLVM-flavoured type lattice: void, integers of a given
bit width, IEEE floats, opaque-pointee pointers, fixed-width vectors and
function types.  Sizes in bytes are what the Roofline instrumentation pass
uses to turn loads/stores into byte counts, so they are first-class here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Type:
    """Base class for all IR types.  Types are immutable and compared by value."""

    def size_bytes(self) -> int:
        """Size of a value of this type in memory."""
        raise NotImplementedError

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))  # repro-lint: allow[no-hash] -- in-process dict/set key for value-equal types; never emitted or ordered on

    def _key(self) -> Tuple:
        return ()

    def __repr__(self) -> str:
        return str(self)


class VoidType(Type):
    def size_bytes(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """An integer of *bits* width (i1, i8, i16, i32, i64)."""

    def __init__(self, bits: int):
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    def _key(self) -> Tuple:
        return (self.bits,)

    def __str__(self) -> str:
        return f"i{self.bits}"

    @property
    def min_value(self) -> int:
        if self.bits == 1:
            return 0
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        if self.bits == 1:
            return 1
        return (1 << (self.bits - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap *value* to this type's two's-complement range."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.bits > 1 and value > self.max_value:
            value -= 1 << self.bits
        return value


class FloatType(Type):
    """An IEEE floating-point type (f32 or f64)."""

    def __init__(self, bits: int):
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")
        self.bits = bits

    def size_bytes(self) -> int:
        return self.bits // 8

    def _key(self) -> Tuple:
        return (self.bits,)

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


class PointerType(Type):
    """A pointer to values of *pointee* type (64-bit address space)."""

    def __init__(self, pointee: Type):
        if isinstance(pointee, VoidType):
            pointee = IntType(8)
        self.pointee = pointee

    def size_bytes(self) -> int:
        return 8

    def _key(self) -> Tuple:
        return (self.pointee,)

    def __str__(self) -> str:
        return f"{self.pointee}*"


class VectorType(Type):
    """A fixed-width vector of *count* elements of *element* type."""

    def __init__(self, element: Type, count: int):
        if not (element.is_integer or element.is_float):
            raise ValueError("vector elements must be scalar integer or float types")
        if count < 1:
            raise ValueError("vector count must be >= 1")
        self.element = element
        self.count = count

    def size_bytes(self) -> int:
        return self.element.size_bytes() * self.count

    def _key(self) -> Tuple:
        return (self.element, self.count)

    def __str__(self) -> str:
        return f"<{self.count} x {self.element}>"


class FunctionType(Type):
    """A function signature."""

    def __init__(self, return_type: Type, param_types: Sequence[Type],
                 is_vararg: bool = False):
        self.return_type = return_type
        self.param_types: List[Type] = list(param_types)
        self.is_vararg = is_vararg

    def size_bytes(self) -> int:
        return 8  # a function value is a pointer

    def _key(self) -> Tuple:
        return (self.return_type, tuple(self.param_types), self.is_vararg)

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self.param_types)
        if self.is_vararg:
            params = f"{params}, ..." if params else "..."
        return f"{self.return_type} ({params})"


# Singleton-ish convenience instances.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)
#: A generic byte pointer ("i8*"), handy for opaque runtime handles.
PTR = PointerType(I8)


_NAMED_TYPES = {
    "void": VOID,
    "i1": I1,
    "i8": I8,
    "i16": I16,
    "i32": I32,
    "i64": I64,
    "float": F32,
    "double": F64,
}


def named_type(name: str) -> Optional[Type]:
    """Look up a scalar type by its textual name (used by the parser)."""
    return _NAMED_TYPES.get(name)


def pointer_to(pointee: Type) -> PointerType:
    return PointerType(pointee)


def vector_of(element: Type, count: int) -> VectorType:
    return VectorType(element, count)
