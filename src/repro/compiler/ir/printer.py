"""Textual IR printer.

Produces an LLVM-flavoured textual form that :mod:`repro.compiler.ir.parser`
can read back.  Round-tripping is covered by property-based tests, so the
printer is the single source of truth for the concrete syntax.
"""

from __future__ import annotations

from typing import List

from repro.compiler.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CompareOp,
    GetElementPtr,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.compiler.ir.module import BasicBlock, Function, Module
from repro.compiler.ir.types import FloatType, Type
from repro.compiler.ir.values import Constant, Value


def _operand(value: Value) -> str:
    """Print an operand without its type."""
    if isinstance(value, Constant):
        if isinstance(value.type, FloatType):
            return repr(float(value.value))
        return str(value.value)
    return f"%{value.name}"


def _typed_operand(value: Value) -> str:
    """Print an operand with its type prefix."""
    return f"{value.type} {_operand(value)}"


def print_instruction(inst: Instruction) -> str:
    """Render one instruction."""
    if isinstance(inst, BinaryOp):
        return (
            f"%{inst.name} = {inst.opcode} {inst.type} "
            f"{_operand(inst.lhs)}, {_operand(inst.rhs)}"
        )
    if isinstance(inst, CompareOp):
        return (
            f"%{inst.name} = {inst.opcode} {inst.predicate} {inst.lhs.type} "
            f"{_operand(inst.lhs)}, {_operand(inst.rhs)}"
        )
    if isinstance(inst, Load):
        return f"%{inst.name} = load {inst.type}, {_typed_operand(inst.pointer)}"
    if isinstance(inst, Store):
        return f"store {_typed_operand(inst.value)}, {_typed_operand(inst.pointer)}"
    if isinstance(inst, Alloca):
        if inst.count != 1:
            return f"%{inst.name} = alloca {inst.allocated_type}, {inst.count}"
        return f"%{inst.name} = alloca {inst.allocated_type}"
    if isinstance(inst, GetElementPtr):
        return (
            f"%{inst.name} = getelementptr {inst.type.pointee}, "
            f"{_typed_operand(inst.base)}, {_typed_operand(inst.index)}"
        )
    if isinstance(inst, Branch):
        return (
            f"br i1 {_operand(inst.condition)}, "
            f"label %{inst.then_block.name}, label %{inst.else_block.name}"
        )
    if isinstance(inst, Jump):
        return f"jmp label %{inst.target.name}"
    if isinstance(inst, Ret):
        if inst.value is None:
            return "ret void"
        return f"ret {_typed_operand(inst.value)}"
    if isinstance(inst, Call):
        args = ", ".join(_typed_operand(a) for a in inst.operands)
        call_text = f"call {inst.type} @{inst.callee_name}({args})"
        if inst.type.is_void:
            return call_text
        return f"%{inst.name} = {call_text}"
    if isinstance(inst, Phi):
        pairs = ", ".join(
            f"[ {_operand(v)}, %{b.name} ]" for v, b in inst.incoming
        )
        return f"%{inst.name} = phi {inst.type} {pairs}"
    if isinstance(inst, Cast):
        return (
            f"%{inst.name} = {inst.opcode} {inst.value.type} "
            f"{_operand(inst.value)} to {inst.type}"
        )
    if isinstance(inst, Select):
        return (
            f"%{inst.name} = select i1 {_operand(inst.condition)}, "
            f"{_typed_operand(inst.true_value)}, {_typed_operand(inst.false_value)}"
        )
    raise TypeError(f"cannot print instruction of type {type(inst).__name__}")


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {print_instruction(inst)}")
    return "\n".join(lines)


def _signature(function: Function) -> str:
    params = ", ".join(
        f"{arg.type} %{arg.name}" for arg in function.args
    )
    return f"{function.return_type} @{function.name}({params})"


def print_function(function: Function) -> str:
    if function.is_declaration:
        params = ", ".join(str(t) for t in function.ftype.param_types)
        return f"declare {function.return_type} @{function.name}({params})"
    lines: List[str] = [f"define {_signature(function)} {{"]
    for block in function.blocks:
        lines.append(print_block(block))
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    parts = [f'; module = "{module.name}"']
    for function in module:
        parts.append(print_function(function))
    return "\n\n".join(parts) + "\n"
