"""IR verifier.

Structural and type checks run after construction, after parsing and after
every transformation pass (the pass manager verifies by default), so a broken
pass fails loudly instead of producing silently wrong instrumentation counts.
"""

from __future__ import annotations

from typing import List, Set

from repro.compiler.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    CompareOp,
    GetElementPtr,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Store,
)
from repro.compiler.ir.module import BasicBlock, Function, Module
from repro.compiler.ir.values import Argument, Constant, UndefValue, Value


class VerificationError(Exception):
    """Raised when a module fails verification."""

    def __init__(self, errors: List[str]):
        self.errors = errors
        super().__init__(
            "IR verification failed:\n" + "\n".join(f"  - {e}" for e in errors)
        )


def _describe(block: BasicBlock, inst: Instruction) -> str:
    """Name an instruction in an error message.

    Value-producing instructions are named by their SSA result; void ones
    (stores, branches) by opcode and position in the block, which is stable
    and enough to find the line in printed IR.
    """
    if inst.name:
        return f"%{inst.name} ({inst.opcode})"
    try:
        position = block.instructions.index(inst)
    except ValueError:
        position = -1
    return f"{inst.opcode} (instruction #{position})"


def _predecessors(function: Function):
    preds = {block: [] for block in function.blocks}
    for block in function.blocks:
        for successor in block.successors():
            if successor in preds:
                preds[successor].append(block)
    return preds


def verify_function(function: Function) -> List[str]:
    """Return a list of problems found in *function* (empty when clean)."""
    errors: List[str] = []
    if function.is_declaration:
        return errors

    blocks_in_function = set(function.blocks)
    defined_values: Set[Value] = set(function.args)
    for block in function.blocks:
        for inst in block.instructions:
            defined_values.add(inst)

    # Every block: exactly one terminator, at the end.
    for block in function.blocks:
        if not block.instructions:
            errors.append(f"{function.name}/{block.name}: empty basic block")
            continue
        terminators = [i for i in block.instructions if i.is_terminator]
        if not terminators:
            errors.append(f"{function.name}/{block.name}: missing terminator")
        elif len(terminators) > 1:
            errors.append(f"{function.name}/{block.name}: multiple terminators")
        elif block.instructions[-1] is not terminators[0]:
            errors.append(
                f"{function.name}/{block.name}: terminator is not the last instruction"
            )
        for successor in block.successors():
            if successor not in blocks_in_function:
                errors.append(
                    f"{function.name}/{block.name}: branch to block "
                    f"{successor.name!r} not in function"
                )

    preds = _predecessors(function)

    for block in function.blocks:
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, Phi):
                if seen_non_phi:
                    errors.append(
                        f"{function.name}/{block.name}: phi %{inst.name} is not at "
                        "the top of its block"
                    )
                incoming_blocks = {b for _, b in inst.incoming}
                pred_set = set(preds.get(block, []))
                if incoming_blocks != pred_set:
                    errors.append(
                        f"{function.name}/{block.name}: phi %{inst.name} incoming "
                        f"blocks {sorted(b.name for b in incoming_blocks)} do not "
                        f"match predecessors {sorted(b.name for b in pred_set)}"
                    )
            else:
                seen_non_phi = True

            for operand in inst.operands:
                if isinstance(operand, (Constant, UndefValue, Argument, BasicBlock)):
                    continue
                if isinstance(operand, Function):
                    continue
                if isinstance(operand, Instruction) and operand not in defined_values:
                    errors.append(
                        f"{function.name}/{block.name}: "
                        f"{_describe(block, inst)} uses value "
                        f"%{operand.name} defined outside the function"
                    )

            errors.extend(_check_types(function, block, inst))

    # Return type consistency.
    for block in function.blocks:
        term = block.terminator
        if isinstance(term, Ret):
            if function.return_type.is_void and term.value is not None:
                errors.append(
                    f"{function.name}: returns a value from a void function"
                )
            elif not function.return_type.is_void:
                if term.value is None:
                    errors.append(f"{function.name}: missing return value")
                elif term.value.type != function.return_type:
                    errors.append(
                        f"{function.name}: return type mismatch "
                        f"({term.value.type} vs {function.return_type})"
                    )
    return errors


def _check_types(function: Function, block: BasicBlock, inst: Instruction) -> List[str]:
    errors: List[str] = []
    where = f"{function.name}/{block.name}"
    if isinstance(inst, BinaryOp):
        if inst.lhs.type != inst.rhs.type:
            errors.append(
                f"{where}: binary op operand type mismatch in "
                f"{_describe(block, inst)}"
            )
        if inst.is_float_op and not (
            inst.type.is_float
            or (inst.type.is_vector and inst.type.element.is_float)
        ):
            errors.append(
                f"{where}: fp opcode {inst.opcode} on non-float type in "
                f"{_describe(block, inst)}"
            )
        if not inst.is_float_op and inst.type.is_float:
            errors.append(
                f"{where}: integer opcode {inst.opcode} on float type in "
                f"{_describe(block, inst)}"
            )
    elif isinstance(inst, Load):
        if not inst.pointer.type.is_pointer:
            errors.append(f"{where}: load from non-pointer in %{inst.name}")
    elif isinstance(inst, Store):
        if not inst.pointer.type.is_pointer:
            errors.append(
                f"{where}: store through non-pointer in {_describe(block, inst)}"
            )
        elif inst.pointer.type.pointee != inst.value.type:
            errors.append(
                f"{where}: store value/pointee type mismatch in "
                f"{_describe(block, inst)} (storing {inst.value.type} "
                f"through {inst.pointer.type})"
            )
    elif isinstance(inst, GetElementPtr):
        if not inst.base.type.is_pointer:
            errors.append(
                f"{where}: getelementptr base is not a pointer in "
                f"{_describe(block, inst)}"
            )
    elif isinstance(inst, Call):
        callee = inst.callee
        if isinstance(callee, Function):
            expected = callee.ftype.param_types
            if not callee.ftype.is_vararg and len(expected) != len(inst.operands):
                errors.append(
                    f"{where}: call to @{callee.name} passes {len(inst.operands)} "
                    f"args, expected {len(expected)}"
                )
            else:
                for i, (arg, param_type) in enumerate(zip(inst.operands, expected)):
                    if arg.type != param_type:
                        errors.append(
                            f"{where}: call to @{callee.name} arg {i} type "
                            f"{arg.type} != param type {param_type}"
                        )
            if callee.return_type != inst.type:
                errors.append(
                    f"{where}: call to @{callee.name} return type mismatch"
                )
    return errors


def verify_module(module: Module) -> None:
    """Verify every function; raise :class:`VerificationError` on problems."""
    errors: List[str] = []
    for function in module:
        errors.extend(verify_function(function))
    if errors:
        raise VerificationError(errors)
