"""Tests for the unified telemetry subsystem.

Three layers, matching the package:

* unit coverage of the :class:`MetricsRegistry` (labels, escaping,
  Prometheus exposition, snapshot/delta/merge shipping) and the
  :class:`Tracer` (null span when disabled, tick-ordinal structure,
  exception unwind, wire round trips, trace exports);
* the ``capture()`` window that pool workers and ``run_many`` processes
  use to ship their deltas to the parent;
* the determinism pins: the same workload+spec produces an *identical*
  structural span tree and identical counter values in two fresh
  processes and across ``PYTHONHASHSEED`` values.  (Subprocesses, not
  in-process re-runs: compile caches and machine pools deliberately warm
  up within one process, so only the first run of a process is the
  canonical one.)
"""

import json
import os
import subprocess
import sys

import pytest

from repro.api import ProfileSpec
from repro.telemetry import capture
from repro.telemetry.registry import (
    MetricsRegistry,
    escape_label_value,
    format_metric_value,
    prometheus_family_header,
    render_labels,
)
from repro.telemetry.spans import Span, Tracer, _NULL_SPAN
from repro.telemetry.trace import (
    chrome_trace,
    jsonl_lines,
    spans_to_flame,
    structural_tree,
    write_trace,
)
from repro.toolchain.cli import main as cli_main

SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "src")


# -- registry -----------------------------------------------------------------------------


def test_counter_labeled_series_and_values():
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_total", "a test counter")
    counter.inc(outcome="hit")
    counter.inc(2, outcome="hit")
    counter.inc(outcome="miss")
    counter.inc(5)
    assert counter.value(outcome="hit") == 3
    assert counter.value(outcome="miss") == 1
    assert counter.value() == 5
    dump = registry.to_dict()["repro_test_total"]
    assert dump["kind"] == "counter"
    assert dump["help"] == "a test counter"
    assert dump["series"] == {
        "": 5, '{outcome="hit"}': 3, '{outcome="miss"}': 1}


def test_labels_render_sorted_by_name():
    registry = MetricsRegistry()
    registry.counter("t_total").inc(zebra="z", alpha="a")
    assert list(registry.to_dict()["t_total"]["series"]) == \
        ['{alpha="a",zebra="z"}']


def test_prometheus_escapes_label_values():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
    registry = MetricsRegistry()
    registry.counter("odd_total", "odd labels").inc(path='a"b\\c\nd')
    text = registry.prometheus()
    assert "# HELP odd_total odd labels" in text
    assert "# TYPE odd_total counter" in text
    assert 'odd_total{path="a\\"b\\\\c\\nd"} 1' in text


def test_prometheus_family_header_omits_empty_help():
    assert prometheus_family_header("m", "counter", "") == \
        ["# TYPE m counter"]
    assert prometheus_family_header("m", "gauge", "depth") == \
        ["# HELP m depth", "# TYPE m gauge"]


def test_empty_registry_renders_empty_string():
    assert MetricsRegistry().prometheus() == ""


def test_format_metric_value_is_prometheus_style():
    assert format_metric_value(1.0) == "1"
    assert format_metric_value(0.001) == "0.001"
    assert render_labels(()) == ""


def test_histogram_cumulative_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_seconds", "latency", bounds=(0.1, 1.0))
    for value in (0.05, 0.05, 0.5, 5.0):
        hist.observe(value, endpoint="/run")
    dump = registry.to_dict()["lat_seconds"]["series"]['{endpoint="/run"}']
    assert dump["count"] == 4
    assert dump["sum"] == pytest.approx(5.6)
    assert dump["buckets"] == {"0.1": 2, "1": 3, "+Inf": 4}
    text = registry.prometheus()
    assert 'lat_seconds_bucket{endpoint="/run",le="0.1"} 2' in text
    assert 'lat_seconds_bucket{endpoint="/run",le="1"} 3' in text
    assert 'lat_seconds_bucket{endpoint="/run",le="+Inf"} 4' in text
    assert 'lat_seconds_count{endpoint="/run"} 4' in text


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("clash")
    with pytest.raises(ValueError, match="already registered as counter"):
        registry.gauge("clash")


def test_snapshot_delta_ships_only_what_changed():
    registry = MetricsRegistry()
    registry.counter("c_total").inc(3, outcome="hit")
    registry.gauge("g").set(7)
    before = registry.snapshot()
    registry.counter("c_total").inc(2, outcome="hit")
    registry.counter("c_total").inc(outcome="miss")
    registry.gauge("g").set(9)
    registry.histogram("h_seconds").observe(0.002)
    delta = registry.snapshot_delta(before)
    assert delta["c_total"]["series"] == \
        [[[["outcome", "hit"]], 2], [[["outcome", "miss"]], 1]]
    # Gauges are point-in-time: the delta ships the current value.
    assert delta["g"]["series"] == [[[], 9]]
    assert delta["h_seconds"]["series"][0][1]["count"] == 1


def test_merge_folds_a_delta_into_another_registry():
    worker = MetricsRegistry()
    worker.counter("c_total", "shipped").inc(4, outcome="hit")
    worker.gauge("g").set(2)
    worker.histogram("h_seconds").observe(0.5)
    parent = MetricsRegistry()
    parent.counter("c_total").inc(outcome="hit")
    parent.merge(worker.snapshot())
    parent.merge(worker.snapshot_delta({}))      # a delta merges the same way
    assert parent.counter("c_total").value(outcome="hit") == 9
    assert parent.gauge("g").value() == 2
    hist_dump = parent.to_dict()["h_seconds"]["series"][""]
    assert hist_dump["count"] == 2
    assert hist_dump["sum"] == pytest.approx(1.0)


def test_merge_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown metric kind"):
        MetricsRegistry().merge({"m": {"kind": "summary", "series": []}})


# -- spans --------------------------------------------------------------------------------


def test_disabled_tracer_returns_the_shared_null_span():
    tracer = Tracer()
    assert tracer.span("a") is _NULL_SPAN
    assert tracer.span("b", cat="phase", x=1) is tracer.span("c")
    with tracer.span("a") as ctx:
        ctx.note(ignored=True)           # the null span absorbs note()
    assert tracer.roots == []
    assert tracer.record("a") is None


def test_span_nesting_and_tick_ordinals():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("outer", cat="phase", a=1) as outer:
        with tracer.span("inner") as inner:
            pass
        outer.note(b=2)
    assert [root.name for root in tracer.roots] == ["outer"]
    root = tracer.roots[0]
    assert root.args == {"a": 1, "b": 2}
    assert [child.name for child in root.children] == ["inner"]
    # Open/close ordinals come from one monotonic tick counter.
    assert (root.seq, inner.span.seq, inner.span.end_seq, root.end_seq) == \
        (1, 2, 3, 4)
    assert root.wall_dur_us >= 0


def test_exception_unwind_closes_the_stack():
    tracer = Tracer()
    tracer.enable()
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    with tracer.span("after"):
        pass
    assert [root.name for root in tracer.roots] == ["outer", "after"]
    assert [c.name for c in tracer.roots[0].children] == ["inner"]


def test_record_appends_flat_roots():
    tracer = Tracer()
    tracer.enable()
    span = tracer.record("service_request", cat="service",
                         wall_dur_us=250, trace_id="req-000001")
    assert span in tracer.roots
    assert span.children == []
    assert (span.seq, span.end_seq) == (1, 2)
    assert span.wall_dur_us == 250
    assert span.args["trace_id"] == "req-000001"


def test_wire_round_trip_and_attach():
    source = Tracer()
    source.enable()
    with source.span("run", workload="memset"):
        with source.span("execute"):
            pass
    wire = [root.to_wire() for root in source.drain()]
    assert json.loads(json.dumps(wire)) == wire     # JSON-safe
    sink = Tracer()
    sink.enable()
    parent = sink.record("worker", cat="service")
    sink.attach_wire(wire, parent=parent)
    assert [c.name for c in parent.children] == ["run"]
    assert parent.children[0].children[0].name == "execute"
    assert parent.children[0].args == {"workload": "memset"}


def test_drain_returns_and_clears():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("a"):
        pass
    roots = tracer.drain()
    assert [r.name for r in roots] == ["a"]
    assert tracer.roots == []


# -- trace exports ------------------------------------------------------------------------


def _sample_forest():
    root = Span("run", "phase", {"workload": "memset"})
    root.seq, root.end_seq = 1, 4
    root.wall_start_us, root.wall_dur_us = 100, 50
    child = Span("execute", "phase", {})
    child.seq, child.end_seq = 2, 3
    child.wall_start_us, child.wall_dur_us = 110, 20
    root.children.append(child)
    return [root]


def test_chrome_trace_schema():
    trace = chrome_trace(_sample_forest())
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert [event["name"] for event in events] == ["run", "execute"]
    for event in events:
        assert event["ph"] == "X"
        for key in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
            assert key in event
        assert {"seq", "end_seq"} <= set(event["args"])
    assert events[0]["ts"] == 100 and events[0]["dur"] == 50


def test_jsonl_lines_are_one_object_per_span():
    lines = jsonl_lines(_sample_forest())
    parsed = [json.loads(line) for line in lines]
    assert [entry["name"] for entry in parsed] == ["run", "execute"]
    assert parsed[0]["args"] == {"workload": "memset"}


def test_write_trace_dispatches_on_extension(tmp_path):
    chrome_path = tmp_path / "trace.json"
    jsonl_path = tmp_path / "trace.jsonl"
    write_trace(str(chrome_path), _sample_forest())
    write_trace(str(jsonl_path), _sample_forest())
    assert "traceEvents" in json.loads(chrome_path.read_text())
    lines = jsonl_path.read_text().splitlines()
    assert len(lines) == 2 and all(json.loads(line) for line in lines)


def test_spans_to_flame_weights_by_wall_microseconds():
    flame = spans_to_flame(_sample_forest())
    assert flame.value == 50
    run = flame.child("run")
    assert run.value == 50
    assert run.self_value == 30            # 50 minus the child's 20
    assert run.child("execute").value == 20


def test_structural_tree_strips_wall_clock_fields():
    tree = structural_tree(_sample_forest())
    assert tree == [{
        "name": "run", "cat": "phase", "args": {"workload": "memset"},
        "seq": 1, "end_seq": 4,
        "children": [{"name": "execute", "cat": "phase", "args": {},
                      "seq": 2, "end_seq": 3, "children": []}],
    }]


# -- capture ------------------------------------------------------------------------------


def test_capture_reports_the_window_delta_only():
    from repro import telemetry
    telemetry.REGISTRY.counter("test_capture_total").inc(5)
    with capture(spans=True) as captured:
        telemetry.REGISTRY.counter("test_capture_total").inc(3)
        with telemetry.span("inside_capture"):
            pass
    assert captured.metrics["test_capture_total"]["series"] == [[[], 3]]
    assert [span["name"] for span in captured.spans] == ["inside_capture"]
    # The window enabled the tracer itself, so it also cleaned up after it.
    assert "inside_capture" not in \
        [root.name for root in telemetry.TRACER.roots]
    # The wire form merges into a fresh (parent-side) registry.
    parent = MetricsRegistry()
    parent.merge(captured.to_wire()["metrics"])
    assert parent.counter("test_capture_total").value() == 3


# -- ProfileSpec.telemetry ----------------------------------------------------------------


def test_spec_telemetry_is_not_on_the_wire():
    spec = ProfileSpec().with_telemetry()
    assert spec.telemetry is True
    assert "telemetry" not in spec.to_dict()
    # ...but service requests may still ask workers to record spans.
    assert ProfileSpec.from_dict({"telemetry": True}).telemetry is True
    assert ProfileSpec.from_dict(spec.to_dict()).telemetry is False


# -- CLI: --trace and `repro metrics` -----------------------------------------------------


def test_cli_stat_trace_is_perfetto_loadable(tmp_path, capsys):
    path = tmp_path / "trace.json"
    code = cli_main(["stat", "--workload", "matmul-tiled",
                     "--trace", str(path)])
    err = capsys.readouterr().err
    assert code == 0
    assert f"wrote trace to {path}" in err
    trace = json.loads(path.read_text())
    events = trace["traceEvents"]
    names = {event["name"] for event in events}
    assert {"cli", "compile", "execute", "analyses"} <= names
    for event in events:
        assert event["ph"] == "X"
        for key in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
            assert key in event


def test_cli_trace_jsonl_variant(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    code = cli_main(["stat", "--workload", "matmul-tiled",
                     "--trace", str(path)])
    capsys.readouterr()
    assert code == 0
    parsed = [json.loads(line) for line in path.read_text().splitlines()]
    assert parsed and {"cli", "execute"} <= {entry["name"]
                                             for entry in parsed}


def test_cli_metrics_local_json(capsys):
    code = cli_main(["metrics", "--workload", "matmul-tiled"])
    out = capsys.readouterr().out
    assert code == 0
    payload = json.loads(out)
    assert payload["repro_runs_total"]["kind"] == "counter"
    assert "repro_block_delta_classified_total" in payload
    assert "repro_compile_cache_total" in payload


def test_cli_metrics_local_prometheus(capsys):
    code = cli_main(["metrics", "--workload", "matmul-tiled",
                     "--format", "prometheus"])
    out = capsys.readouterr().out
    assert code == 0
    assert "# TYPE repro_runs_total counter" in out
    assert 'workload="matmul-tiled"' in out


# -- determinism across processes and hash seeds ------------------------------------------

# The probe runs in a *fresh* interpreter each time: within one process the
# compile cache and pooled machines warm up, so only a cold process is
# comparable to another cold process.  Histograms are excluded (their sums
# are wall-clock); everything else -- the structural span forest and every
# counter family -- must be byte-identical as sorted JSON.
_PROBE = """\
import json
from repro import telemetry
from repro.api import ProfileSpec, Session
from repro.telemetry.trace import structural_tree

telemetry.enable()
run = Session("SpacemiT X60").run("matmul-tiled", ProfileSpec().counting())
telemetry.disable()
assert not run.errors, run.errors
print(json.dumps({
    "spans": structural_tree(telemetry.TRACER.roots),
    "counters": {name: family["series"]
                 for name, family in telemetry.REGISTRY.to_dict().items()
                 if family["kind"] == "counter"},
}, sort_keys=True))
"""

_probe_cache = {}


def _run_probe(hashseed, instance=0):
    key = (hashseed, instance)
    if key not in _probe_cache:
        # Disk cache off: the first fresh process would *write* disk-cache
        # entries (and emit write counters + compile spans) while the next
        # would *hit* them (hit counters + load spans) -- observability
        # divergence, not result divergence.  Cold-vs-cold is the
        # comparison this probe is about.
        env = dict(os.environ, PYTHONPATH=SRC_DIR,
                   PYTHONHASHSEED=str(hashseed),
                   REPRO_DISK_CACHE="off")
        proc = subprocess.run([sys.executable, "-c", _PROBE], env=env,
                              capture_output=True, text=True, timeout=600)
        assert proc.returncode == 0, proc.stderr
        _probe_cache[key] = proc.stdout
    return _probe_cache[key]


@pytest.mark.slow
def test_telemetry_identical_across_fresh_processes():
    assert _run_probe(0, instance=0) == _run_probe(0, instance=1)


@pytest.mark.slow
def test_telemetry_identical_across_hash_seeds():
    assert _run_probe(0) == _run_probe(1)
