"""Tests for the profiling service: wire format, cache, pool, daemon, CLI.

The expensive fixtures run one in-process daemon (``workers=0``: the same
worker functions on a daemon-side thread) per module and drive it over real
HTTP with the stdlib client.  Multiprocess behavior (worker crashes, pool
respawn) gets its own short-lived servers.

The load-bearing property throughout: every export the service caches is
byte-reproducible (``Run.deterministic_dict`` strips the one wall-clock
field), so a cache hit must serve *byte-identical* content to the miss that
filled it, and ``--server`` CLI output must be byte-identical to the
in-process CLI modulo the stripped ``timings`` key.
"""

import json
import os
import re
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ProfileSpec, Session
from repro.api.executor import RunRequest, run_many
from repro.api.spec import ANALYSES, DEFAULT_EVENTS
from repro.cpu.events import HwEvent
from repro.service import wire
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import BackgroundServer, ServiceConfig
from repro.service.metrics import LatencyHistogram
from repro.service.pool import WarmPool, WorkerCrash
from repro.workloads import registry

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")


# -- shared servers -----------------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    """One inline-mode daemon for every cheap HTTP test in this module."""
    config = ServiceConfig(port=0, workers=0, warm_kernels=False)
    with BackgroundServer(config) as background:
        yield background


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.address)


def _post_raw(address: str, path: str, payload: dict,
              headers: dict = None):
    """POST and return (status, raw bytes, headers) -- for byte-identity."""
    request = urllib.request.Request(
        address + path, data=json.dumps(payload).encode("utf-8"),
        method="POST", headers={"Content-Type": "application/json",
                                **(headers or {})})
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, response.read(), dict(response.headers.items())


# -- wire format --------------------------------------------------------------------------


def test_cache_key_is_key_order_insensitive():
    a = wire.cache_key("run", {"platform": "x", "workload": "y"})
    b = wire.cache_key("run", {"workload": "y", "platform": "x"})
    assert a == b


def test_cache_key_separates_endpoint_namespaces():
    request = {"platform": "x", "workload": "y"}
    assert wire.cache_key("run", request) != wire.cache_key("compare", request)


def test_strip_timings_is_recursive():
    payload = {"timings": 1, "runs": [{"timings": 2, "keep": 3}],
               "nested": {"timings": 4, "deep": [{"timings": 5}]}}
    assert wire.strip_timings(payload) == {
        "runs": [{"keep": 3}], "nested": {"deep": [{}]}}


def test_encode_body_preserves_key_order():
    assert wire.encode_body({"b": 1, "a": 2}) == b'{"b":1,"a":2}'


# -- result cache -------------------------------------------------------------------------


def test_result_cache_hit_miss_bypass_accounting():
    cache = ResultCache(max_entries=4)
    assert cache.get("k") is None
    cache.put("k", b"v")
    assert cache.get("k") == b"v"
    cache.note_bypass()
    assert cache.stats() == {
        "entries": 1, "max_entries": 4, "hits": 1, "misses": 1,
        "bypasses": 1, "evictions": 0, "hit_ratio": 0.5}


def test_result_cache_evicts_least_recently_used():
    cache = ResultCache(max_entries=2)
    cache.put("a", b"1")
    cache.put("b", b"2")
    cache.get("a")              # refresh a; b is now LRU
    cache.put("c", b"3")
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.evictions == 1


def test_result_cache_rejects_nonpositive_bound():
    with pytest.raises(ValueError, match="max_entries"):
        ResultCache(max_entries=0)


def test_latency_histogram_buckets_are_cumulative():
    histogram = LatencyHistogram(bounds=(0.1, 1.0))
    for seconds in (0.05, 0.5, 0.5, 5.0):
        histogram.observe(seconds)
    assert histogram.to_dict() == {
        "count": 4, "sum_seconds": 6.05,
        "buckets": {"0.1": 1, "1": 3, "+Inf": 4}}


# -- spec / request round trips -----------------------------------------------------------

_spec_strategy = st.builds(
    ProfileSpec,
    events=st.lists(st.sampled_from(list(HwEvent)), min_size=1, max_size=4,
                    unique=True).map(tuple),
    sample_period=st.integers(min_value=1, max_value=10**6),
    vendor_driver=st.sampled_from([None, True, False]),
    enable_vectorizer=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**31),
    invocations=st.integers(min_value=1, max_value=4),
    repeats=st.integers(min_value=1, max_value=4),
    cpus=st.integers(min_value=1, max_value=8),
    fast_dispatch=st.booleans(),
    block_delta=st.booleans(),
    fast_cache=st.booleans(),
    verify_ir=st.booleans(),
    analyses=st.lists(st.sampled_from(ANALYSES), max_size=len(ANALYSES),
                      unique=True).map(tuple),
)


@settings(max_examples=50, deadline=None)
@given(spec=_spec_strategy)
def test_profile_spec_round_trips_exactly(spec):
    assert ProfileSpec.from_dict(spec.to_dict()) == spec
    through_json = json.loads(json.dumps(spec.to_dict()))
    assert ProfileSpec.from_dict(through_json) == spec


def test_profile_spec_partial_dict_takes_defaults():
    spec = ProfileSpec.from_dict({"cpus": 2})
    assert spec.cpus == 2
    assert spec.events == DEFAULT_EVENTS


def test_profile_spec_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown ProfileSpec key"):
        ProfileSpec.from_dict({"cpu": 2})


@settings(max_examples=25, deadline=None)
@given(spec=_spec_strategy,
       platform=st.sampled_from(["SpacemiT X60", "SiFive U74", "x60"]),
       workload=st.sampled_from(["memset", "sqlite3-like"]),
       params=st.dictionaries(st.sampled_from(["n", "scale"]),
                              st.integers(min_value=1, max_value=64),
                              max_size=1),
       vendor_driver=st.booleans())
def test_run_request_round_trips_exactly(spec, platform, workload, params,
                                         vendor_driver):
    request = RunRequest(platform=platform, workload=workload, params=params,
                         spec=spec, vendor_driver=vendor_driver)
    assert RunRequest.from_dict(request.to_dict()) == request
    through_json = json.loads(json.dumps(request.to_dict()))
    assert RunRequest.from_dict(through_json) == request


def test_run_request_wire_format_needs_names():
    request = RunRequest(platform="x60", workload=registry.create("memset"))
    with pytest.raises(ValueError, match="registry workload names"):
        request.to_dict()
    with pytest.raises(ValueError, match="unknown RunRequest key"):
        RunRequest.from_dict({"platform": "x60", "workload": "memset",
                              "sped": {}})
    with pytest.raises(ValueError, match="'platform' and 'workload'"):
        RunRequest.from_dict({"workload": "memset"})


# -- run_many satellites ------------------------------------------------------------------


class _CrashOnRun:
    """A workload that kills its worker process the moment a run touches it."""

    name = "crash-on-run"
    kind = "synthetic"
    description = "dies mid-run (worker-crash tests)"

    @property
    def executable(self):
        os._exit(3)


def test_run_many_rejects_negative_workers():
    with pytest.raises(ValueError, match=r"workers must be >= 0 \(got -1\)"):
        run_many([], workers=-1)


def test_run_many_worker_death_raises_clean_error():
    registry.register("crash-on-run", _CrashOnRun)
    try:
        requests = [RunRequest(platform="SpacemiT X60",
                               workload="crash-on-run",
                               spec=ProfileSpec(analyses=("stat",)))] * 2
        with pytest.raises(RuntimeError, match=(
                r"worker process died executing request 0 of 2 \(platform "
                r"'SpacemiT X60', workload 'crash-on-run'\)")):
            run_many(requests, workers=2)
    finally:
        registry._factories.pop("crash-on-run", None)
        registry._descriptions.pop("crash-on-run", None)


# -- warm pool ----------------------------------------------------------------------------


def _exit_hard(_payload):
    os._exit(3)


def _echo(payload):
    return payload


def test_warm_pool_respawns_once_per_generation():
    pool = WarmPool(workers=1)
    try:
        generation = pool.generation
        with pytest.raises(WorkerCrash):
            pool.submit(_exit_hard, {}).result(timeout=60)
        assert pool.respawn(generation) is True
        assert pool.respawn(generation) is False   # second reporter: no-op
        assert (pool.restarts, pool.generation) == (1, generation + 1)
        assert pool.submit(_echo, {"ok": 1}).result(timeout=60) == {"ok": 1}
    finally:
        pool.shutdown()


def test_warm_pool_rejects_negative_workers():
    with pytest.raises(ValueError, match="workers must be >= 0"):
        WarmPool(workers=-1)


# -- daemon end-to-end: determinism ------------------------------------------------------

_COUNTING = {"analyses": ["stat"]}
_SAMPLING = {"analyses": ["hotspots", "flamegraph"], "sample_period": 2000}


@pytest.mark.parametrize("platform", ["SpacemiT X60", "T-Head C910"])
@pytest.mark.parametrize("mode,spec_dict", [("counting", _COUNTING),
                                            ("sampling", _SAMPLING)])
def test_served_run_matches_local_and_cache_hit_is_byte_identical(
        server, platform, mode, spec_dict):
    request = {"platform": platform, "workload": "micro-calltree",
               "spec": dict(spec_dict)}
    status, first, headers1 = _post_raw(server.address, "/run", request)
    assert status == 200
    _status, second, headers2 = _post_raw(server.address, "/run", request)
    assert headers2["X-Repro-Cache"] == "hit"
    assert second == first, f"{platform}/{mode}: cache hit changed the bytes"

    spec = ProfileSpec.from_dict(spec_dict)
    local = Session(platform).run(registry.create("micro-calltree"), spec)
    served = json.loads(first.decode("utf-8"))
    assert served["run"] == local.deterministic_dict()
    # Byte-level: the served body embeds the exact compact dump of the dict.
    assert json.dumps(served["run"], separators=(",", ":")) == \
        json.dumps(local.deterministic_dict(), separators=(",", ":"))


def test_platform_alias_and_spelled_defaults_share_a_cache_entry(server):
    canonical = {"platform": "SpacemiT X60", "workload": "memset",
                 "params": {"n": 64}, "spec": dict(_COUNTING)}
    _status, first, _headers = _post_raw(server.address, "/run", canonical)
    aliased = {"platform": "x60", "workload": "memset", "params": {"n": 64},
               "spec": dict(_COUNTING, seed=42, cpus=1)}  # explicit defaults
    _status, second, headers = _post_raw(server.address, "/run", aliased)
    assert headers["X-Repro-Cache"] == "hit"
    assert second == first


def test_any_knob_change_misses_the_cache(server, client):
    base = {"platform": "SpacemiT X60", "workload": "memset",
            "params": {"n": 64}, "spec": dict(_COUNTING)}
    client.run(base)                                      # fill
    variants = [
        {**base, "spec": dict(_COUNTING, fast_dispatch=False)},   # spec flag
        {**base, "params": {"n": 65}},                            # params
        {**base, "spec": dict(_COUNTING, cpus=2)},                # cpus
        {**base, "vendor_driver": False},                         # driver
    ]
    for variant in variants:
        reply = client.run(variant, with_meta=True)
        assert reply.cache == "miss", f"{variant} unexpectedly hit"
    assert client.run(base, with_meta=True).cache == "hit"


def test_bypass_header_skips_lookup_but_refills(server, client):
    request = {"platform": "SpacemiT X60", "workload": "memset",
               "params": {"n": 96}, "spec": dict(_COUNTING)}
    before = client.metrics()["executions"].get("POST /run", 0)
    assert client.run(request, with_meta=True).cache == "miss"
    assert client.run(request, bypass_cache=True,
                      with_meta=True).cache == "bypass"
    after = client.metrics()
    assert after["executions"]["POST /run"] == before + 2
    assert after["cache"]["bypasses"] >= 1
    # The bypass refilled the entry: the next lookup is a hit.
    assert client.run(request, with_meta=True).cache == "hit"


def test_identical_requests_execute_once(server, client):
    request = {"platform": "T-Head C910", "workload": "memset",
               "params": {"n": 128}, "spec": dict(_COUNTING)}
    first = client.run(request, with_meta=True)
    executions = client.metrics()["executions"]["POST /run"]
    second = client.run(request, with_meta=True)
    assert (first.cache, second.cache) == ("miss", "hit")
    assert client.metrics()["executions"]["POST /run"] == executions
    assert second.payload == first.payload
    # Every response -- hits included -- carries a distinct trace id.
    assert re.fullmatch(r"req-\d{6}", first.trace_id)
    assert re.fullmatch(r"req-\d{6}", second.trace_id)
    assert first.trace_id != second.trace_id


def test_plan_serves_each_request_from_the_run_cache(server, client):
    requests = [
        {"platform": "SpacemiT X60", "workload": "memset",
         "params": {"n": 160}, "spec": dict(_COUNTING)},
        {"platform": "SiFive U74", "workload": "memset",
         "params": {"n": 160}, "spec": dict(_COUNTING)},
    ]
    reply = client.plan(requests, with_meta=True)
    assert reply.payload["cache"] == ["miss", "miss"]
    assert [entry["run"]["platform"] for entry in reply.payload["runs"]] == \
        ["SpacemiT X60", "SiFive U74"]
    # The per-request entries are shared with POST /run.
    assert client.run(requests[0], with_meta=True).cache == "hit"
    again = client.plan(requests, with_meta=True)
    assert again.payload["cache"] == ["hit", "hit"]
    assert again.payload["runs"] == reply.payload["runs"]


def test_degraded_runs_are_served_not_500s(server, client):
    """Sampling on a platform without overflow interrupts degrades into
    run.errors exactly like the in-process path, and still caches."""
    request = {"platform": "SiFive U74", "workload": "micro-calltree",
               "spec": dict(_SAMPLING)}
    reply = client.run(request, with_meta=True)
    assert "sampling" in reply.payload["run"]["errors"]
    assert client.run(request, with_meta=True).cache == "hit"


# -- daemon end-to-end: error paths and backpressure -------------------------------------


def test_unknown_path_and_method_are_structured_errors(server, client):
    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/nope")
    assert (excinfo.value.status, excinfo.value.kind) == (404, "NotFound")
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/healthz", {})
    assert (excinfo.value.status, excinfo.value.kind) == (
        405, "MethodNotAllowed")


def test_bad_requests_are_400s(server, client):
    cases = [
        {"platform": "not-a-platform", "workload": "memset"},
        {"platform": "x60", "workload": "not-a-workload"},
        {"platform": "x60", "workload": "memset", "spec": {"bogus": 1}},
        {"platform": "x60", "workload": "memset",
         "spec": {"analyses": ["nope"]}},
    ]
    for payload in cases:
        with pytest.raises(ServiceError) as excinfo:
            client.run(payload)
        assert excinfo.value.status == 400, payload
        assert excinfo.value.kind == "BadRequest"


def test_plan_flood_is_rejected_with_retry_after():
    config = ServiceConfig(port=0, workers=0, queue_limit=1,
                           warm_kernels=False)
    with BackgroundServer(config) as background:
        client = ServiceClient(background.address)
        # Two distinct misses need two admission slots at once: over the
        # bound of 1, deterministically -- no timing races.
        with pytest.raises(ServiceError) as excinfo:
            client.plan([
                {"platform": "x60", "workload": "memset",
                 "spec": dict(_COUNTING)},
                {"platform": "u74", "workload": "memset",
                 "spec": dict(_COUNTING)},
            ])
        error = excinfo.value
        assert (error.status, error.kind) == (429, "Overloaded")
        # No request has completed yet, so the hint is the no-history
        # fallback (a tenth of the request timeout), never below 1s.
        assert error.retry_after is not None and error.retry_after >= 1
        header = error.headers.get("Retry-After")
        assert header is not None
        # The header and the structured error body carry the same value.
        assert float(header) == error.payload["error"]["retry_after"] \
            == error.retry_after
        assert client.metrics()["rejected"] == 1
        # A single request still fits under the bound and fills the cache.
        single = client.run({"platform": "x60", "workload": "memset",
                             "spec": dict(_COUNTING)}, with_meta=True)
        assert single.cache == "miss"


def test_request_timeout_is_a_504():
    config = ServiceConfig(port=0, workers=0, request_timeout=0.001,
                           warm_kernels=False)
    with BackgroundServer(config) as background:
        client = ServiceClient(background.address)
        with pytest.raises(ServiceError) as excinfo:
            client.run({"platform": "x60", "workload": "memset",
                        "spec": dict(_COUNTING)})
        assert (excinfo.value.status, excinfo.value.kind) == (504, "Timeout")
        assert client.metrics()["timeouts"] == 1


def test_worker_crash_fails_in_flight_and_respawns_the_pool():
    registry.register("crash-on-run", _CrashOnRun)
    try:
        config = ServiceConfig(port=0, workers=1, warm_kernels=False)
        with BackgroundServer(config) as background:
            client = ServiceClient(background.address)
            with pytest.raises(ServiceError) as excinfo:
                # Bypass so the failed request cannot be cache-poisoned.
                client.run({"platform": "x60", "workload": "crash-on-run",
                            "spec": dict(_COUNTING)}, bypass_cache=True)
            assert (excinfo.value.status, excinfo.value.kind) == (
                500, "WorkerCrashed")
            assert client.healthz()["worker_restarts"] == 1
            # The respawned pool serves the next request normally.
            reply = client.run({"platform": "x60", "workload": "memset",
                                "params": {"n": 64},
                                "spec": dict(_COUNTING)}, with_meta=True)
            assert reply.cache in ("miss", "hit")
            assert client.metrics()["worker_restarts"] == 1
    finally:
        registry._factories.pop("crash-on-run", None)
        registry._descriptions.pop("crash-on-run", None)


# -- CLI --server ------------------------------------------------------------------------


def _cli(capsys, argv):
    from repro.toolchain.cli import main
    code = main(list(argv))
    return code, capsys.readouterr().out


def _strip_timings_text(out: str) -> str:
    payload = wire.strip_timings(json.loads(out))
    return json.dumps(payload, indent=2) + "\n"


@pytest.mark.parametrize("argv", [
    ["stat", "--workload", "micro-calltree", "-p", "x60", "--json"],
    ["stat", "--workload", "micro-calltree", "-p", "T-Head C910", "--json"],
    ["record", "--workload", "micro-calltree", "-p", "x60",
     "--period", "2000", "--json"],
    ["record", "--workload", "micro-calltree", "-p", "T-Head C910",
     "--period", "2000", "--json"],
], ids=["stat-x60", "stat-c910", "record-x60", "record-c910"])
def test_cli_server_json_is_byte_identical_modulo_timings(
        server, capsys, argv):
    code_local, local = _cli(capsys, argv)
    code_remote, remote = _cli(capsys, argv + ["--server", server.address])
    assert (code_local, code_remote) == (0, 0)
    assert remote == _strip_timings_text(local)
    # Cache-served output is identical to the fill's, byte for byte.
    _code, cached = _cli(capsys, argv + ["--server", server.address])
    assert cached == remote


@pytest.mark.parametrize("argv", [
    ["stat", "--workload", "micro-calltree", "-p", "x60"],
    ["record", "--workload", "micro-calltree", "-p", "x60",
     "--period", "2000"],
    ["analyze", "--workload", "stream-triad", "-p", "x60"],
], ids=["stat", "record", "analyze"])
def test_cli_server_text_output_is_byte_identical(server, capsys, argv):
    code_local, local = _cli(capsys, argv)
    code_remote, remote = _cli(capsys, argv + ["--server", server.address])
    assert (code_local, code_remote) == (0, 0)
    assert remote == local


def test_cli_server_compare_matches_local(server, capsys):
    argv = ["compare", "--platforms", "SpacemiT X60", "T-Head C910",
            "--workload", "micro-calltree", "--period", "2000"]
    code_local, local = _cli(capsys, argv)
    code_remote, remote = _cli(capsys, argv + ["--server", server.address])
    assert (code_local, code_remote) == (0, 0)
    assert remote == local
    code_local, local = _cli(capsys, argv + ["--json"])
    code_remote, remote = _cli(capsys, argv + ["--json", "--server",
                                               server.address])
    assert (code_local, code_remote) == (0, 0)
    assert remote == _strip_timings_text(local)


def test_cli_server_analyze_json_matches_local(server, capsys):
    argv = ["analyze", "--workload", "stream-triad", "-p", "x60", "--json"]
    code_local, local = _cli(capsys, argv)
    code_remote, remote = _cli(capsys, argv + ["--server", server.address])
    assert (code_local, code_remote) == (0, 0)
    assert remote == local            # analyze has no timings to strip


def test_cli_server_unreachable_daemon_fails_cleanly(capsys):
    from repro.toolchain.cli import main
    code = main(["stat", "--workload", "memset",
                 "--server", "http://127.0.0.1:9"])
    captured = capsys.readouterr()
    assert code == 1
    assert "stat failed:" in captured.err


# -- metrics golden ----------------------------------------------------------------------


def _normalized_metrics(metrics: dict) -> dict:
    """The deterministic projection of /metrics: latency histograms reduce
    to their counts (durations are host wall-clock), and the ``engine`` key
    is dropped entirely -- the unified registry is process-global, so its
    series depend on whatever else ran in this pytest process (and its
    phase histograms carry wall-clock sums)."""
    normalized = dict(metrics)
    normalized.pop("engine", None)
    normalized["latency_seconds"] = {
        endpoint: {"count": histogram["count"]}
        for endpoint, histogram in metrics["latency_seconds"].items()}
    cache = dict(metrics["cache"])
    normalized["cache"] = cache
    return normalized


def test_metrics_golden(request):
    """A fixed request sequence produces a fixed /metrics document."""
    config = ServiceConfig(port=0, workers=0, queue_limit=2, cache_entries=8,
                           warm_kernels=False)
    with BackgroundServer(config) as background:
        client = ServiceClient(background.address)
        run = {"platform": "x60", "workload": "memset", "params": {"n": 64},
               "spec": dict(_COUNTING)}
        client.run(run)                                  # miss
        client.run(run)                                  # hit
        client.run(run, bypass_cache=True)               # bypass
        with pytest.raises(ServiceError):
            client.run({"platform": "x60", "workload": "nope"})   # 400
        with pytest.raises(ServiceError):
            client.plan([                                # deterministic 429
                {"platform": "x60", "workload": "memset",
                 "spec": dict(_COUNTING, seed=1)},
                {"platform": "u74", "workload": "memset",
                 "spec": dict(_COUNTING, seed=1)},
                {"platform": "c910", "workload": "memset",
                 "spec": dict(_COUNTING, seed=1)},
            ])
        client.healthz()
        metrics = client.metrics()
        # The unified-registry series ride under "engine": run tallies from
        # the executed requests plus the daemon's own admission accounting.
        engine = metrics["engine"]
        assert "repro_runs_total" in engine
        assert "repro_service_admitted_total" in engine
        assert "repro_result_cache" in engine
        normalized = json.dumps(_normalized_metrics(metrics),
                                indent=2) + "\n"
        # The Prometheus rendering exposes the same counters.
        prometheus = client.metrics(format="prometheus")
        # 4 = miss + hit + bypass + the rejected bad request.
        assert 'repro_requests_total{endpoint="POST /run"} 4' in prometheus
        assert "repro_cache_hits_total 1" in prometheus
        assert "repro_rejected_total 1" in prometheus
        # ... and the unified registry is appended after the service families.
        assert "# TYPE repro_runs_total counter" in prometheus
        assert "# TYPE repro_service_queue gauge" in prometheus

    path = os.path.join(GOLDEN_DIR, "service_metrics.json")
    if request.config.getoption("--update-goldens"):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(normalized)
        return
    assert os.path.exists(path), (
        "golden service_metrics.json missing; generate it with "
        "--update-goldens")
    with open(path, "r", encoding="utf-8") as handle:
        golden = handle.read()
    assert normalized == golden, (
        "/metrics diverged from tests/goldens/service_metrics.json; if the "
        "change is intentional, rerun with --update-goldens and review")


# -- capabilities ------------------------------------------------------------------------


def test_capabilities_lists_platforms_workloads_endpoints(client):
    capabilities = client.capabilities()
    names = {platform["name"] for platform in capabilities["platforms"]}
    assert {"SpacemiT X60", "SiFive U74", "T-Head C910"} <= names
    assert "memset" in capabilities["workloads"]
    assert "/run" in capabilities["endpoints"]
    assert capabilities["capabilities"], "Table-1 rows missing"


# -- load-derived Retry-After -------------------------------------------------------------


def _bare_service(**overrides):
    """A ReproService without warm pools -- for unit-testing hint math."""
    from repro.service.daemon import ReproService
    defaults = dict(port=0, workers=0, warm_platforms=(),
                    warm_kernels=False)
    defaults.update(overrides)
    return ReproService(ServiceConfig(**defaults))


def test_retry_after_falls_back_without_history():
    service = _bare_service(request_timeout=300.0)
    assert service._retry_after_hint() == 30.0


def test_retry_after_scales_with_queue_depth_and_service_rate():
    service = _bare_service()
    service._service_seconds.extend([0.2, 0.4])       # mean 0.3s
    # Empty queue, inline concurrency 1: one wave of the mean service time.
    assert service._retry_after_hint(slots_needed=1) == pytest.approx(0.3)
    # A backlog drains in ceil(backlog / concurrency) waves.
    service._admitted = 5
    assert service._retry_after_hint(slots_needed=1) == pytest.approx(1.8)
    assert service._retry_after_hint(slots_needed=3) == pytest.approx(2.4)


def test_retry_after_is_clamped():
    service = _bare_service(request_timeout=2.0)
    service._service_seconds.append(0.001)
    assert service._retry_after_hint() == 0.1          # sub-0.1 floors
    service._service_seconds.clear()
    service._service_seconds.append(500.0)
    service._admitted = 30
    assert service._retry_after_hint() == 2.0          # timeout ceiling


def test_loaded_daemon_hints_fractional_retry_after():
    """End-to-end: after a served request the daemon has an observed rate,
    so a flood gets a load-derived (typically sub-second) fractional hint,
    identical in header and body."""
    config = ServiceConfig(port=0, workers=0, queue_limit=1,
                           warm_kernels=False)
    with BackgroundServer(config) as background:
        client = ServiceClient(background.address)
        client.run({"platform": "x60", "workload": "memset",
                    "spec": dict(_COUNTING)})           # seeds the rate
        with pytest.raises(ServiceError) as excinfo:
            client.plan([
                {"platform": "x60", "workload": "memset",
                 "spec": dict(_COUNTING, seed=7)},
                {"platform": "u74", "workload": "memset",
                 "spec": dict(_COUNTING, seed=7)},
            ])
        error = excinfo.value
        assert (error.status, error.kind) == (429, "Overloaded")
        assert error.retry_after is not None
        assert 0.1 <= error.retry_after <= config.request_timeout
        assert float(error.headers["Retry-After"]) \
            == error.payload["error"]["retry_after"] == error.retry_after


def test_client_parses_fractional_retry_after_from_either_source():
    error = ServiceError(429, {"error": {"retry_after": 0.25}})
    assert error.retry_after == 0.25
    error = ServiceError(429, {"error": {}}, {"retry-after": "0.75"})
    assert error.retry_after == 0.75
    error = ServiceError(429, {"error": {"retry_after": 0.5}},
                         {"Retry-After": "9"})
    assert error.retry_after == 0.5, "structured body wins over header"
    assert ServiceError(429, {"error": {}}).retry_after is None
    assert ServiceError(429, {"error": {"retry_after": "nan-ish"}},
                        ).retry_after is None or True  # no crash on junk


# -- persistent result cache across restarts ----------------------------------------------


def test_daemon_restart_serves_results_from_disk(tmp_path):
    """A ``--cache-dir`` daemon's results survive the process: a fresh
    daemon on the same store serves the first request as a byte-identical
    hit, without executing anything."""
    cache_dir = str(tmp_path / "daemon-cache")
    request = {"platform": "x60", "workload": "memset",
               "spec": dict(_COUNTING)}

    config = ServiceConfig(port=0, workers=0, warm_kernels=False,
                           cache_dir=cache_dir)
    with BackgroundServer(config) as background:
        first = ServiceClient(background.address).run(request,
                                                      with_meta=True)
        assert first.cache == "miss"
        cold = json.dumps(first.payload, sort_keys=True)

    with BackgroundServer(config) as background:
        client = ServiceClient(background.address)
        reply = client.run(request, with_meta=True)
        assert reply.cache == "hit", "restart must start hot"
        assert json.dumps(reply.payload, sort_keys=True) == cold
        stats = client.metrics()["cache"]
        assert stats["disk_hits"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 0


def test_memory_only_daemon_metrics_have_no_disk_keys(client):
    stats = client.metrics()["cache"]
    assert "disk_hits" not in stats and "disk_misses" not in stats
