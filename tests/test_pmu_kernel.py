"""Tests for the PMU hardware, SBI firmware and perf_event kernel layers.

This file covers the paper's Section 3: the privilege chain
(kernel -> SBI -> machine CSRs), per-vendor PMU capabilities (Table 1), and
the perf_event group semantics that make the X60 workaround possible.
"""

import pytest

from repro.cpu.events import EventBus, HwEvent
from repro.isa.machine_ops import MachineOp, OpClass
from repro.isa.privilege import PrivilegeMode
from repro.kernel import (
    PerfEventAttr,
    PerfEventOpenError,
    ReadFormat,
    SampleType,
)
from repro.kernel.drivers import EventInitError
from repro.platforms import (
    Machine,
    intel_i5_1135g7,
    sifive_u74,
    spacemit_x60,
    thead_c910,
)
from repro.pmu.counters import HardwareCounter, SamplingUnsupportedError
from repro.pmu.vendors import (
    IntelTigerLakePmu,
    SiFiveU74Pmu,
    SpacemitX60Pmu,
    TheadC910Pmu,
    all_capabilities,
    pmu_for_identity,
    X60_IDENTITY,
)
from repro.sbi.firmware import SBI_EXT_BASE, BASE_PROBE_EXTENSION, SbiError
from repro.sbi.pmu_ext import (
    PMU_COUNTER_CFG_MATCHING,
    PMU_COUNTER_FW_READ,
    PMU_COUNTER_START,
    PMU_NUM_COUNTERS,
    SBI_EXT_PMU,
)


class TestHardwareCounter:
    def test_counts_only_configured_event_when_running(self):
        counter = HardwareCounter(3, supports_sampling=True)
        counter.configure(HwEvent.CYCLES)
        counter.count(HwEvent.CYCLES, 10)        # not running yet
        counter.start()
        counter.count(HwEvent.CYCLES, 10)
        counter.count(HwEvent.INSTRUCTIONS, 99)  # wrong event
        assert counter.read() == 10

    def test_sampling_unsupported_raises(self):
        counter = HardwareCounter(0, supports_sampling=False)
        with pytest.raises(SamplingUnsupportedError):
            counter.arm_sampling(100, lambda overflow: None)

    def test_overflow_fires_every_period(self):
        overflows = []
        counter = HardwareCounter(3, supports_sampling=True)
        counter.configure(HwEvent.CYCLES)
        counter.arm_sampling(100, overflows.append)
        counter.start()
        for _ in range(10):
            counter.count(HwEvent.CYCLES, 55)
        assert len(overflows) == 5    # 550 pulses / period 100
        assert all(o.period == 100 for o in overflows)

    def test_large_increment_spanning_periods(self):
        overflows = []
        counter = HardwareCounter(3, supports_sampling=True)
        counter.configure(HwEvent.CYCLES)
        counter.arm_sampling(10, overflows.append)
        counter.start()
        assert counter.count(HwEvent.CYCLES, 35) == 3

    def test_width_wraparound(self):
        counter = HardwareCounter(3, supports_sampling=True, width_bits=8)
        counter.configure(HwEvent.CYCLES)
        counter.start()
        counter.count(HwEvent.CYCLES, 300)
        assert counter.read() == 300 % 256


class TestVendorPmus:
    def test_table1_capabilities(self):
        capabilities = all_capabilities()
        u74 = capabilities["SiFive U74"]
        c910 = capabilities["T-Head C910"]
        x60 = capabilities["SpacemiT X60"]
        assert not u74.out_of_order and u74.rvv_version is None
        assert u74.overflow_interrupt_support == "no" and u74.upstream_linux == "yes"
        assert c910.out_of_order and c910.rvv_version == "0.7.1"
        assert c910.overflow_interrupt_support == "yes" and c910.upstream_linux == "partial"
        assert not x60.out_of_order and x60.rvv_version == "1.0"
        assert x60.overflow_interrupt_support == "limited" and x60.upstream_linux == "no"

    def test_x60_fixed_counters_cannot_sample_but_mode_cycles_can(self):
        pmu = SpacemitX60Pmu(EventBus())
        assert not pmu.event_supports_sampling(HwEvent.CYCLES)
        assert not pmu.event_supports_sampling(HwEvent.INSTRUCTIONS)
        assert pmu.event_supports_sampling(HwEvent.U_MODE_CYCLE)

    def test_u74_cannot_sample_anything(self):
        pmu = SiFiveU74Pmu(EventBus())
        assert not pmu.event_supports_sampling(HwEvent.CYCLES)
        with pytest.raises(SamplingUnsupportedError):
            pmu.allocate_counter(HwEvent.CYCLES, need_sampling=True)

    def test_c910_and_intel_sample_cycles_directly(self):
        for cls in (TheadC910Pmu, IntelTigerLakePmu):
            pmu = cls(EventBus())
            assert pmu.event_supports_sampling(HwEvent.CYCLES)

    def test_pmu_for_identity(self):
        pmu = pmu_for_identity(X60_IDENTITY, EventBus())
        assert isinstance(pmu, SpacemitX60Pmu)

    def test_counters_observe_bus(self):
        bus = EventBus()
        pmu = SpacemitX60Pmu(bus)
        index = pmu.allocate_counter(HwEvent.CYCLES, need_sampling=False)
        pmu.start_counter(index)
        bus.publish(HwEvent.CYCLES, 500)
        assert pmu.read_counter(index) == 500


class TestSbi:
    def _machine(self):
        return Machine(spacemit_x60())

    def test_base_extension_probe(self):
        machine = self._machine()
        ret = machine.sbi.ecall(SBI_EXT_BASE, BASE_PROBE_EXTENSION, [SBI_EXT_PMU])
        assert ret.ok and ret.value == 1

    def test_user_mode_cannot_ecall(self):
        machine = self._machine()
        ret = machine.sbi.ecall(SBI_EXT_PMU, PMU_NUM_COUNTERS, [],
                                caller_mode=PrivilegeMode.USER)
        assert ret.error is SbiError.DENIED

    def test_num_counters(self):
        machine = self._machine()
        ret = machine.sbi.ecall(SBI_EXT_PMU, PMU_NUM_COUNTERS)
        assert ret.ok
        assert ret.value == len(machine.pmu.counter_indices())

    def test_config_matching_programs_and_delegates(self):
        machine = self._machine()
        code = machine.pmu.event_code(HwEvent.U_MODE_CYCLE)
        ret = machine.sbi.ecall(SBI_EXT_PMU, PMU_COUNTER_CFG_MATCHING,
                                [3, 0xFFFF, 0, code])
        assert ret.ok
        chosen = ret.value
        assert machine.csr.event_selector(chosen) == code
        assert machine.csr.supervisor_can_read(chosen)

    def test_unknown_event_code_not_supported(self):
        machine = self._machine()
        ret = machine.sbi.ecall(SBI_EXT_PMU, PMU_COUNTER_CFG_MATCHING,
                                [3, 0xFFFF, 0, 0xDEAD])
        assert ret.error is SbiError.NOT_SUPPORTED

    def test_fw_read_roundtrip(self):
        machine = self._machine()
        code = machine.pmu.event_code(HwEvent.CYCLES)
        cfg = machine.sbi.ecall(SBI_EXT_PMU, PMU_COUNTER_CFG_MATCHING,
                                [0, 0xFFFFFFFF, 0, code])
        machine.sbi.ecall(SBI_EXT_PMU, PMU_COUNTER_START, [cfg.value, 0, 0])
        for _ in range(10):
            machine.execute(MachineOp(OpClass.INT_ALU))
        read = machine.sbi.ecall(SBI_EXT_PMU, PMU_COUNTER_FW_READ, [cfg.value])
        assert read.ok and read.value > 0


class TestPerfEvent:
    def _x60(self):
        machine = Machine(spacemit_x60())
        return machine, machine.create_task("bench")

    def _run(self, machine, task, ops=5000):
        for i in range(ops):
            machine.execute(MachineOp(OpClass.INT_ALU, pc=0x1000 + (i % 32) * 4), task)

    def test_counting_mode_works_on_every_platform(self):
        for descriptor in (spacemit_x60(), sifive_u74(), thead_c910(), intel_i5_1135g7()):
            machine = Machine(descriptor)
            task = machine.create_task("t")
            fd = machine.perf.perf_event_open(PerfEventAttr(event=HwEvent.INSTRUCTIONS), task)
            machine.perf.enable(fd)
            self._run(machine, task, 1000)
            machine.perf.disable(fd)
            assert machine.perf.read(fd).value == 1000

    def test_naive_cycle_sampling_fails_on_x60_with_eopnotsupp(self):
        machine, task = self._x60()
        with pytest.raises(PerfEventOpenError) as excinfo:
            machine.perf.perf_event_open(
                PerfEventAttr(event=HwEvent.CYCLES, sample_period=1000), task)
        assert excinfo.value.errno_name == "EOPNOTSUPP"

    def test_sampling_fails_entirely_on_u74(self):
        machine = Machine(sifive_u74())
        task = machine.create_task("t")
        with pytest.raises(PerfEventOpenError):
            machine.perf.perf_event_open(
                PerfEventAttr(event=HwEvent.CYCLES, sample_period=1000), task)

    def test_group_leader_workaround_samples_cycles_and_instret_on_x60(self):
        machine, task = self._x60()
        leader_attr = PerfEventAttr(
            event=HwEvent.U_MODE_CYCLE, sample_period=2000,
            sample_type=frozenset({SampleType.IP, SampleType.CALLCHAIN, SampleType.READ}),
            read_format=frozenset({ReadFormat.GROUP}),
        )
        leader = machine.perf.perf_event_open(leader_attr, task)
        machine.perf.perf_event_open(PerfEventAttr(event=HwEvent.CYCLES), task, group_fd=leader)
        machine.perf.perf_event_open(PerfEventAttr(event=HwEvent.INSTRUCTIONS), task,
                                     group_fd=leader)
        machine.perf.enable(leader)
        task.push_frame("main")
        task.push_frame("hot_loop")
        self._run(machine, task, 20000)
        machine.perf.disable(leader)
        samples = machine.perf.mmap(leader).drain()
        assert len(samples) > 3
        sample = samples[-1]
        assert sample.group_values["cycles"] > 0
        assert sample.group_values["instructions"] > 0
        assert sample.callchain[0] == "hot_loop"

    def test_x60_vendor_events_invisible_without_vendor_driver(self):
        machine = Machine(spacemit_x60(), vendor_driver=False)
        task = machine.create_task("t")
        with pytest.raises(PerfEventOpenError) as excinfo:
            machine.perf.perf_event_open(
                PerfEventAttr(event=HwEvent.U_MODE_CYCLE, sample_period=1000), task)
        assert excinfo.value.errno_name in ("ENOENT", "EOPNOTSUPP")

    def test_direct_cycle_sampling_works_on_intel(self):
        machine = Machine(intel_i5_1135g7())
        task = machine.create_task("t")
        fd = machine.perf.perf_event_open(
            PerfEventAttr(event=HwEvent.CYCLES, sample_period=500,
                          sample_type=frozenset({SampleType.IP})), task)
        machine.perf.enable(fd)
        self._run(machine, task, 10000)
        machine.perf.disable(fd)
        assert len(machine.perf.mmap(fd)) > 0

    def test_bad_group_fd_rejected(self):
        machine, task = self._x60()
        with pytest.raises(PerfEventOpenError) as excinfo:
            machine.perf.perf_event_open(PerfEventAttr(event=HwEvent.CYCLES), task,
                                         group_fd=999)
        assert excinfo.value.errno_name == "EBADF"

    def test_time_enabled_and_running_accounting(self):
        machine, task = self._x60()
        fd = machine.perf.perf_event_open(PerfEventAttr(event=HwEvent.CYCLES), task)
        machine.perf.enable(fd)
        self._run(machine, task, 2000)
        machine.perf.disable(fd)
        read = machine.perf.read(fd)
        assert read.time_enabled > 0
        assert read.time_running == read.time_enabled
        assert read.scaling_factor == pytest.approx(1.0)

    def test_unknown_event_enoent(self):
        machine = Machine(sifive_u74())
        task = machine.create_task("t")
        with pytest.raises(PerfEventOpenError) as excinfo:
            machine.perf.perf_event_open(PerfEventAttr(event=HwEvent.U_MODE_CYCLE), task)
        assert excinfo.value.errno_name == "ENOENT"

    def test_ring_buffer_lost_records(self):
        from repro.kernel.ring_buffer import RingBuffer, SampleRecord
        buffer = RingBuffer(capacity=2)
        for i in range(5):
            buffer.write(SampleRecord(ip=i, pid=1, tid=1, time=i, period=1, event="cycles"))
        assert len(buffer) == 2
        assert buffer.lost == 3
        assert buffer.total_written == 2
