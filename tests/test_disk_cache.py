"""The persistent content-addressed store: integrity, fallback, identity.

Four layers of guarantees:

* **Envelope integrity** -- property tests corrupt stored entries (random
  truncations, random bit flips) and assert the store *always* detects the
  damage, counts it, removes the file and reports a miss; a concurrent
  writer fleet leaves a readable, verify-clean store.
* **Silent fallback** -- a corrupted module entry costs a recompile, never
  an error and never different output.
* **Bit identity** -- a disk-served compile produces byte-identical
  ``deterministic_dict()`` output to a cold compile, across every
  registered workload and platform (full matrix in the slow lane).
* **Key aliasing** -- the module memo keys on the *full* lowering
  configuration: two descriptors agreeing on ``(march, sp_lanes)`` but
  lowering differently (the historical aliasing bug) get distinct modules.
"""

import dataclasses
import json
import multiprocessing
import os
import random

import pytest

from repro.cache.store import DiskCache, cache_enabled, default_store
from repro.cache.keys import cache_key, lowering_config, module_key


def fresh_store(tmp_path, name="store"):
    return DiskCache(str(tmp_path / name))


# -- envelope round-trip ------------------------------------------------------------------


def test_round_trip_and_tallies(tmp_path):
    store = fresh_store(tmp_path)
    key = cache_key("module", {"probe": 1})
    assert store.get("module", key) is None
    assert store.put("module", key, b"payload bytes")
    assert store.get("module", key) == b"payload bytes"
    assert (store.hits, store.misses, store.writes,
            store.integrity_failures) == (1, 1, 1, 0)


def test_entries_layout_is_sharded_and_sorted(tmp_path):
    store = fresh_store(tmp_path)
    keys = [cache_key("module", {"n": n}) for n in range(6)]
    for key in keys:
        store.put("module", key, key.encode())
    listed = list(store.entries())
    assert [key for _kind, key, _path in listed] == sorted(keys)
    for _kind, key, path in listed:
        assert path == store.entry_path("module", key)
        assert os.sep + key[:2] + os.sep in path


def test_kind_namespacing_never_collides(tmp_path):
    store = fresh_store(tmp_path)
    request = {"same": "request"}
    module_digest = cache_key("module", request)
    verdict_digest = cache_key("verdicts", request)
    assert module_digest != verdict_digest
    # Even an identical digest string filed under two kinds stays distinct.
    store.put("module", module_digest, b"module bytes")
    store.put("verdicts", module_digest, b"verdict bytes")
    assert store.get("module", module_digest) == b"module bytes"
    assert store.get("verdicts", module_digest) == b"verdict bytes"


def test_reading_entry_under_wrong_kind_is_integrity_failure(tmp_path):
    store = fresh_store(tmp_path)
    key = cache_key("module", {"n": 1})
    store.put("module", key, b"payload")
    wrong = store.entry_path("verdicts", key)
    os.makedirs(os.path.dirname(wrong), exist_ok=True)
    os.replace(store.entry_path("module", key), wrong)
    assert store.get("verdicts", key) is None
    assert store.integrity_failures == 1
    assert not os.path.exists(wrong), "corrupt entry must be removed"


# -- corruption property tests ------------------------------------------------------------


def _stored_blob(store, kind, key):
    with open(store.entry_path(kind, key), "rb") as handle:
        return handle.read()


def _write_blob(store, kind, key, blob):
    with open(store.entry_path(kind, key), "wb") as handle:
        handle.write(blob)


@pytest.mark.parametrize("seed", range(16))
def test_random_truncation_is_always_detected(tmp_path, seed):
    """Property: any truncation (including to zero bytes) is a counted
    integrity failure, the file is removed, and a re-put recovers."""
    rng = random.Random(seed)
    store = fresh_store(tmp_path)
    key = cache_key("module", {"seed": seed})
    payload = bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 4096)))
    store.put("module", key, payload)
    blob = _stored_blob(store, "module", key)
    _write_blob(store, "module", key, blob[:rng.randrange(len(blob))])

    assert store.get("module", key) is None
    assert store.integrity_failures == 1
    assert not os.path.exists(store.entry_path("module", key))
    assert store.put("module", key, payload)
    assert store.get("module", key) == payload


@pytest.mark.parametrize("seed", range(16))
def test_random_bit_flip_is_always_detected(tmp_path, seed):
    """Property: flipping any single bit anywhere in the envelope -- magic,
    header, payload -- is detected and treated as a miss."""
    rng = random.Random(1000 + seed)
    store = fresh_store(tmp_path)
    key = cache_key("module", {"seed": seed})
    payload = bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 4096)))
    store.put("module", key, payload)
    blob = bytearray(_stored_blob(store, "module", key))
    position = rng.randrange(len(blob))
    blob[position] ^= 1 << rng.randrange(8)
    _write_blob(store, "module", key, bytes(blob))

    assert store.get("module", key) is None
    assert store.integrity_failures == 1
    assert not os.path.exists(store.entry_path("module", key))


def test_verify_reports_and_removes_corruption(tmp_path):
    store = fresh_store(tmp_path)
    keys = [cache_key("module", {"n": n}) for n in range(4)]
    for key in keys:
        store.put("module", key, key.encode())
    victim = store.entry_path("module", keys[0])
    with open(victim, "r+b") as handle:
        handle.seek(0)
        handle.write(b"XXXX")
    report = store.verify(remove=False)
    assert report == {"checked": 4, "ok": 3, "corrupt": 1, "removed": 0}
    assert os.path.exists(victim)
    report = store.verify(remove=True)
    assert report == {"checked": 4, "ok": 3, "corrupt": 1, "removed": 1}
    assert not os.path.exists(victim)
    assert store.verify() == {"checked": 3, "ok": 3, "corrupt": 0,
                              "removed": 0}


def test_clear_removes_everything(tmp_path):
    store = fresh_store(tmp_path)
    for n in range(3):
        store.put("module", cache_key("module", {"n": n}), b"x")
    assert store.clear() == 3
    assert list(store.entries()) == []
    assert store.stats(scan=True)["entries"] == 0


# -- concurrent writers -------------------------------------------------------------------


def _writer_process(root: str, worker: int) -> None:
    store = DiskCache(root)
    for n in range(25):
        # Half the keys are shared across workers (same bytes -- content
        # addressing), half are private, so replace-over-existing and
        # first-write races both happen.
        shared = n % 2 == 0
        request = {"n": n} if shared else {"n": n, "worker": worker}
        key = cache_key("module", request)
        payload = json.dumps(request, sort_keys=True).encode() * 50
        assert store.put("module", key, payload)
        assert store.get("module", key) == payload


def test_concurrent_writers_leave_consistent_store(tmp_path):
    """Property: racing writers (atomic tmp+rename per entry) never leave a
    torn entry -- every key reads back, verify() is clean."""
    root = str(tmp_path / "shared")
    context = multiprocessing.get_context("fork")
    workers = [context.Process(target=_writer_process, args=(root, worker))
               for worker in range(4)]
    for process in workers:
        process.start()
    for process in workers:
        process.join(timeout=60)
        assert process.exitcode == 0
    store = DiskCache(root)
    report = store.verify(remove=False)
    assert report["corrupt"] == 0
    # 13 shared keys + 4 workers x 12 private keys.
    assert report["checked"] == report["ok"] == 13 + 4 * 12
    for kind, key, _path in store.entries():
        assert store.get(kind, key) is not None


# -- enable/disable knobs -----------------------------------------------------------------


def test_disk_cache_off_disables_default_store(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "off"))
    for value in ("off", "0", "false", "no", "OFF"):
        monkeypatch.setenv("REPRO_DISK_CACHE", value)
        assert not cache_enabled()
        assert default_store() is None
    monkeypatch.setenv("REPRO_DISK_CACHE", "on")
    assert cache_enabled()
    store = default_store()
    assert store is not None
    assert store.root == str(tmp_path / "off")
    assert default_store() is store, "per-root store must be memoized"


# -- compile-cache integration ------------------------------------------------------------


FAST_PLATFORMS = ("SpacemiT X60", "SiFive U74")


def _fresh_disk(monkeypatch, tmp_path, name):
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / name))
    return default_store()


def _run_bytes(platform: str, workload: str) -> bytes:
    from repro.api.executor import RunRequest, execute_request
    from repro.api.spec import ProfileSpec
    from repro.compiler.cache import clear_memory_cache
    clear_memory_cache()
    run = execute_request(RunRequest(platform=platform, workload=workload,
                                     spec=ProfileSpec().counting()))
    return json.dumps(run.deterministic_dict(), sort_keys=True).encode()


def _identity_matrix(monkeypatch, tmp_path, platforms, workloads):
    from repro.compiler import cache as compile_cache
    for platform in platforms:
        for workload in workloads:
            monkeypatch.setenv("REPRO_DISK_CACHE", "off")
            cold = _run_bytes(platform, workload)
            store = _fresh_disk(monkeypatch, tmp_path,
                                f"{platform}-{workload}")
            compile_cache.reset_stats()
            filled = _run_bytes(platform, workload)   # compiles, fills disk
            warm = _run_bytes(platform, workload)     # must load from disk
            assert cold == filled == warm, (platform, workload)
            stats = compile_cache.cache_stats()
            if any(entry_kind == "module"
                   for entry_kind, _key, _path in store.entries()):
                assert stats["disk_hits"] >= 1, (platform, workload, stats)


def test_disk_served_runs_are_bit_identical_fast(monkeypatch, tmp_path):
    """Differential (fast subset): disk-served == cold, byte for byte."""
    _identity_matrix(monkeypatch, tmp_path, FAST_PLATFORMS,
                     ("memset", "dot-product"))


@pytest.mark.slow
def test_disk_served_runs_are_bit_identical_full_matrix(monkeypatch,
                                                        tmp_path):
    """Differential (full): every registered workload x every platform."""
    from repro.platforms import all_platforms
    from repro.workloads import registry
    _identity_matrix(monkeypatch, tmp_path,
                     [descriptor.name for descriptor in all_platforms()],
                     sorted(registry))


def test_corrupt_module_entry_silently_recompiles(monkeypatch, tmp_path):
    """The ISSUE acceptance bar: a corrupted cache entry must cost a
    recompile, never an error and never different bytes."""
    from repro.compiler import cache as compile_cache
    store = _fresh_disk(monkeypatch, tmp_path, "corrupt")
    baseline = _run_bytes("SpacemiT X60", "memset")
    module_entries = [(kind, key, path)
                      for kind, key, path in store.entries()
                      if kind == "module"]
    assert module_entries, "the run must have filled a module entry"
    for _kind, _key, path in module_entries:
        with open(path, "r+b") as handle:
            handle.seek(16)
            handle.write(b"\xff\xff\xff\xff")
    compile_cache.reset_stats()
    recompiled = _run_bytes("SpacemiT X60", "memset")
    assert recompiled == baseline
    stats = compile_cache.cache_stats()
    assert stats["disk_hits"] == 0, "corrupt entry must not disk-hit"
    assert store.integrity_failures >= 1
    # The recompile re-filled the store; the next cold process disk-hits.
    compile_cache.reset_stats()
    assert _run_bytes("SpacemiT X60", "memset") == baseline
    assert compile_cache.cache_stats()["disk_hits"] >= 1


# -- the key-aliasing regression ----------------------------------------------------------


def _aliasing_pair():
    """Two descriptors the OLD memo key (source, filename, march, sp_lanes,
    enable_vectorizer) could not tell apart: same march, same sp_lanes --
    but one has no vector unit and the other a 32-bit-VLEN RVV unit, which
    selects a different target lowering."""
    from repro.platforms.descriptors import VectorCapability, sifive_u74
    plain = sifive_u74()
    vectorish = dataclasses.replace(
        plain, name="u74-rvv32", vector=VectorCapability("RVV 1.0", 32))
    assert plain.march == vectorish.march
    assert plain.vector.sp_lanes() == vectorish.vector.sp_lanes() == 1
    assert plain.vector.supported != vectorish.vector.supported
    return plain, vectorish


def test_lowering_config_separates_aliasing_descriptors():
    plain, vectorish = _aliasing_pair()
    assert lowering_config(plain, True) != lowering_config(vectorish, True)
    source = "long kernel(long n) { return n; }\n"
    assert (module_key(source, "k.c", plain, True)
            != module_key(source, "k.c", vectorish, True))


def test_aliasing_descriptors_get_distinct_modules_and_targets():
    """Regression: the memo must hand the aliasing pair distinct module
    instances, each certified for its own (different) target."""
    from repro.compiler.cache import compile_source_cached
    from repro.compiler.targets.registry import target_for_platform
    plain, vectorish = _aliasing_pair()
    assert target_for_platform(plain) is not target_for_platform(vectorish)
    source = "long kernel(long a, long b) { return a * b + a; }\n"
    module_plain = compile_source_cached(source, "alias.c", plain, True)
    module_vector = compile_source_cached(source, "alias.c", vectorish, True)
    assert module_plain is not module_vector
    # And memoization still works per configuration.
    assert compile_source_cached(source, "alias.c", plain, True) \
        is module_plain
    assert compile_source_cached(source, "alias.c", vectorish, True) \
        is module_vector


# -- warmup attribution -------------------------------------------------------------------


def test_pool_warmup_does_not_inflate_cache_stats():
    """Regression: pool initializers reset the tallies after warmup, so
    cache_stats() attributes only request-driven compiles."""
    from repro.api import executor
    from repro.compiler.cache import cache_stats, clear_memory_cache
    clear_memory_cache()
    source = "long kernel(long n) { return n + 1; }\n"
    try:
        executor._warm_worker([("SpacemiT X60", source, "warm.c", True)])
    finally:
        # The initializer marks the process as a pool worker; this test
        # runs it in the main process, so undo the marking.
        executor._IN_WORKER_PROCESS = False
    assert cache_stats() == {"hits": 0, "misses": 0, "disk_hits": 0}


def test_service_pool_warmup_does_not_inflate_cache_stats():
    from repro.compiler.cache import cache_stats, clear_memory_cache
    from repro.service.pool import warm_kernel_plan, warm_worker
    clear_memory_cache()
    warm_worker([("SpacemiT X60", True, 1)],
                warm_kernel_plan(["SpacemiT X60"]))
    assert cache_stats() == {"hits": 0, "misses": 0, "disk_hits": 0}
