"""Differential suite: fast-dispatch SMP execution vs. the reference interpreter.

The SMP path executes compiled-kernel thread quanta through the predecoded,
batch-retiring engine (``spec.fast_dispatch=True``, the default) with the
original instruction-at-a-time interpreter kept as the reference semantics.
This suite pins down the load-bearing property: for every registered
parallel workload, on 1, 2 and 4 harts, the two engines produce

* bit-identical counting stats (raw counts, multiplex-scaled counts and the
  ``time_enabled``/``time_running`` multiplex times, per hart and aggregate),
* bit-identical per-hart sample streams (ip, time, cpu, callchain, group
  readouts -- everything except the process-global pids),
* bit-identical ``ScheduleTrace`` interleavings (the engine is the quantum
  generator, and both dispatch paths must yield after the same dynamic
  instruction), and
* an identical full ``Run.to_dict()`` export (hotspots, flame graphs,
  per-hart breakdowns) modulo the spec's own ``fast_dispatch`` field.
"""

import pytest

from repro.api import ProfileSpec, Session
from repro.miniperf.stat import DEFAULT_STAT_EVENTS
from repro.workloads import registry
from repro.workloads.parallel import ParallelWorkload

PLATFORM = "SpacemiT X60"
HART_COUNTS = (1, 2, 4)

#: Sizes small enough for a differential run (the default sizes are tuned
#: for the scaling benchmarks); unknown workloads fall back to their factory
#: defaults, so a newly registered parallel workload is covered automatically.
SMALL_PARAMS = {
    "matmul-parallel": {"n": 16},
    "stream-triad-mt": {"n": 384},
    "forkjoin-calltree": {"scale": 1},
}

PARALLEL_WORKLOADS = sorted(
    name for name in registry if isinstance(registry[name], ParallelWorkload)
)


def _workload(name: str):
    return registry.create(name, **SMALL_PARAMS.get(name, {}))


def _run(name: str, spec: ProfileSpec, fast: bool):
    """One run on a fresh Session (fresh machines: no cross-run cache state)."""
    session = Session(PLATFORM)
    return session.run(_workload(name), spec.replace(fast_dispatch=fast))


def _comparable_dict(run) -> dict:
    """Everything the run exported, minus the spec (it names the engine) and
    the wall-clock phase timings (the one non-deterministic field)."""
    payload = run.to_dict()
    payload.pop("spec")
    payload.pop("timings", None)
    return payload


def _sample_tuples(recording):
    """Sample identity minus pids (allocated from a process-global counter)."""
    return [
        (s.cpu, s.ip, s.time, s.period, s.event, tuple(s.callchain),
         dict(s.group_values))
        for s in recording.samples
    ]


def test_covers_all_registered_parallel_workloads():
    assert set(PARALLEL_WORKLOADS) >= {
        "matmul-parallel", "stream-triad-mt", "forkjoin-calltree"
    }


@pytest.mark.parametrize("cpus", HART_COUNTS)
@pytest.mark.parametrize("name", PARALLEL_WORKLOADS)
class TestCountingDifferential:
    """stat runs: batched event aggregation vs. per-op retirement."""

    SPEC = ProfileSpec(analyses=("stat",), events=DEFAULT_STAT_EVENTS)

    def test_counters_multiplex_times_and_schedule_identical(self, name, cpus):
        fast = _run(name, self.SPEC.with_cpus(cpus), fast=True)
        slow = _run(name, self.SPEC.with_cpus(cpus), fast=False)

        assert _comparable_dict(fast) == _comparable_dict(slow)

        # Raw counts AND multiplex times, per hart: CorrectedCount carries
        # raw, scaled, time_enabled and time_running, and compares field-wise.
        fast_stats = fast.stat.per_hart if cpus > 1 else [fast.stat]
        slow_stats = slow.stat.per_hart if cpus > 1 else [slow.stat]
        assert len(fast_stats) == len(slow_stats) == cpus
        for fast_hart, slow_hart in zip(fast_stats, slow_stats):
            assert fast_hart.counts == slow_hart.counts
            assert fast_hart.unsupported == slow_hart.unsupported

        if cpus > 1:
            assert fast.schedule is not None
            assert fast.schedule.quanta == slow.schedule.quanta
            assert fast.schedule.threads_per_hart == \
                slow.schedule.threads_per_hart


@pytest.mark.parametrize("cpus", HART_COUNTS)
@pytest.mark.parametrize("name", PARALLEL_WORKLOADS)
class TestSamplingDifferential:
    """record runs: any armed sampling counter forces per-op retirement."""

    SPEC = ProfileSpec(sample_period=1_000,
                       analyses=("hotspots", "flamegraph"))

    def test_sample_streams_and_schedule_identical(self, name, cpus):
        fast = _run(name, self.SPEC.with_cpus(cpus), fast=True)
        slow = _run(name, self.SPEC.with_cpus(cpus), fast=False)

        assert not fast.errors and not slow.errors
        assert _comparable_dict(fast) == _comparable_dict(slow)

        # Full merged stream plus each hart's sub-stream, sample by sample.
        assert _sample_tuples(fast.recording) == _sample_tuples(slow.recording)
        assert fast.recording.sample_count > 0
        if cpus > 1:
            for fast_hart, slow_hart in zip(fast.recording.per_hart,
                                            slow.recording.per_hart):
                assert _sample_tuples(fast_hart) == _sample_tuples(slow_hart)
            assert fast.recording.final_counts == slow.recording.final_counts
            assert fast.schedule.quanta == slow.schedule.quanta


class TestEngineQuantum:
    """run_yielding itself: preemption mid-function, state preserved."""

    def _engine(self, fast: bool, n: int = 64):
        from repro.compiler.cache import compile_source_cached
        from repro.compiler.targets import target_for_platform
        from repro.platforms import Machine, spacemit_x60
        from repro.vm import ExecutionEngine, Memory
        from repro.workloads.kernels import triad_args_builder
        from repro.workloads.parallel import TRIAD_SLICE_SOURCE

        descriptor = spacemit_x60()
        machine = Machine(descriptor)
        task = machine.create_task("triad")
        module = compile_source_cached(TRIAD_SLICE_SOURCE, "triad.c", descriptor,
                                       enable_vectorizer=True)
        memory = Memory()
        args = list(triad_args_builder(n)(memory))
        engine = ExecutionEngine(module, machine, target_for_platform(descriptor),
                                 task=task, memory=memory, fast_dispatch=fast)
        return engine, memory, args

    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "slow"])
    def test_small_quantum_preempts_mid_function(self, fast):
        engine, _memory, args = self._engine(fast)
        yields = sum(1 for _ in engine.run_yielding("triad", args, quantum=50))
        assert yields > 5                      # preempted many times mid-loop
        assert engine.stats.ir_instructions > 0

    def test_yield_points_identical_across_engines(self):
        counts = {}
        for fast in (True, False):
            engine, _memory, args = self._engine(fast)
            boundaries = []
            for _ in engine.run_yielding("triad", args, quantum=100):
                boundaries.append(engine.stats.ir_instructions)
            counts[fast] = (boundaries, engine.stats.ir_instructions,
                            engine.stats.machine_ops)
        assert counts[True] == counts[False]

    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "slow"])
    def test_run_yielding_matches_plain_run(self, fast):
        preempted, memory_a, args_a = self._engine(fast)
        for _ in preempted.run_yielding("triad", args_a, quantum=64):
            pass
        straight, memory_b, args_b = self._engine(fast)
        straight.run("triad", args_b)
        # Same results in memory and same modelled machine state: preemption
        # must not change what executed, only where control was handed back.
        from repro.compiler.ir import F32
        a = [memory_a.load_typed(args_a[0] + 4 * i, F32) for i in range(64)]
        b = [memory_b.load_typed(args_b[0] + 4 * i, F32) for i in range(64)]
        assert a == b
        assert preempted.machine.cycles == straight.machine.cycles
        assert preempted.machine.event_totals() == straight.machine.event_totals()

    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "slow"])
    def test_run_while_suspended_still_executes_internal_calls(self, fast):
        """run() on an engine whose run_yielding() generator is suspended
        must execute internal calls normally (the yield-mode cell is scoped
        to the generator, not the engine's lifetime)."""
        from repro.compiler.cache import compile_source_cached
        from repro.platforms import spacemit_x60
        from repro.vm import ExecutionEngine

        source = """
        float helper(float x) { return x * 2.0f; }
        float caller(float x) { return helper(x) + 1.0f; }
        float looper(float x, long n) {
          float acc = x;
          for (long i = 0; i < n; i++) { acc = acc + 1.0f; }
          return acc;
        }
        """
        module = compile_source_cached(source, "reentrant.c", spacemit_x60(),
                                       enable_vectorizer=True)
        engine = ExecutionEngine(module, fast_dispatch=fast)
        suspended = engine.run_yielding("looper", [0.0, 500], quantum=50)
        next(suspended)                       # leave it parked mid-loop
        assert engine.run("caller", [3.0]) == 7.0
        remaining = sum(1 for _ in suspended)
        assert remaining > 0                  # the parked run still finishes
        assert engine.run("caller", [5.0]) == 11.0

    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "slow"])
    def test_validation_is_eager_not_deferred_to_first_next(self, fast):
        engine, _memory, args = self._engine(fast)
        # All of these raise at the call site -- a scheduler must never be
        # handed a generator that detonates on its first next().
        with pytest.raises(ValueError, match="quantum"):
            engine.run_yielding("triad", args, quantum=0)
        with pytest.raises(KeyError):
            engine.run_yielding("nosuch", args)
        with pytest.raises(ValueError, match="arguments"):
            engine.run_yielding("triad", args[:-1])
