"""The sweep engine: cartesian plans, incremental re-runs, trajectories.

The acceptance bar from the issue: a second identical ``repro sweep``
invocation executes nothing (every cell is a disk-cache hit), hit payloads
are byte-identical to executed ones, and a corrupted result entry silently
re-executes.  The engine shares the service result namespace, so a
sweep-filled store serves a daemon's :class:`ResultCache` and vice versa.
"""

import json

import pytest

from repro.api.executor import RunRequest
from repro.api.spec import ProfileSpec
from repro.api.sweep import (
    TRAJECTORY_SCHEMA,
    build_plan,
    canonical_cell,
    sweep,
)
from repro.cache.keys import RESULT_KIND, cache_key
from repro.cache.store import DiskCache
from repro.toolchain.cli import main


def fresh_store(tmp_path, name="sweep-store"):
    return DiskCache(str(tmp_path / name))


# -- plan construction --------------------------------------------------------------------


def test_build_plan_is_the_cartesian_product():
    plan = build_plan(["x60", "u74"], ["memset", "dot-product"],
                      cpus=(1, 2))
    assert len(plan) == 8
    assert [(request.platform, request.workload, request.spec.cpus)
            for request in plan] == [
        ("x60", "memset", 1), ("x60", "memset", 2),
        ("x60", "dot-product", 1), ("x60", "dot-product", 2),
        ("u74", "memset", 1), ("u74", "memset", 2),
        ("u74", "dot-product", 1), ("u74", "dot-product", 2),
    ]


def test_build_plan_axes_expand_spec_knobs_in_sorted_order():
    plan = build_plan(["x60"], ["memset"],
                      axes={"enable_vectorizer": [True, False],
                            "block_delta": [True, False]})
    assert len(plan) == 4
    # Axis names apply sorted (block_delta before enable_vectorizer), each
    # in its given value order.
    assert [(request.spec.block_delta, request.spec.enable_vectorizer)
            for request in plan] == [
        (True, True), (True, False), (False, True), (False, False)]


def test_build_plan_rejects_unknown_axis():
    with pytest.raises(TypeError):
        build_plan(["x60"], ["memset"], axes={"no_such_knob": [1]})


def test_canonical_cell_resolves_aliases_to_one_key():
    short = canonical_cell(RunRequest(platform="x60", workload="memset"))
    full = canonical_cell(RunRequest(platform="SpacemiT X60",
                                     workload="memset"))
    assert short == full
    assert cache_key("run", short) == cache_key("run", full)


def test_canonical_cell_rejects_unknown_workload():
    with pytest.raises(ValueError, match="unknown workload"):
        canonical_cell(RunRequest(platform="x60", workload="nope"))


# -- incremental execution ----------------------------------------------------------------


def test_second_sweep_serves_every_cell_from_cache(tmp_path):
    plan = build_plan(["x60", "u74"], ["memset"], cpus=(1,))
    first = sweep(plan, workers=0, store=fresh_store(tmp_path))
    assert first.counts() == {"hit": 0, "executed": 2, "deduplicated": 0,
                              "resumed": 0, "error": 0}
    assert not first.all_from_cache

    second = sweep(plan, workers=0, store=fresh_store(tmp_path))
    assert second.counts() == {"hit": 2, "executed": 0, "deduplicated": 0,
                               "resumed": 0, "error": 0}
    assert second.all_from_cache
    for cold, warm in zip(first.outcomes, second.outcomes):
        assert cold.cell.key == warm.cell.key
        assert cold.body() == warm.body(), "hit must be byte-identical"


def test_duplicate_cells_execute_once(tmp_path):
    request = build_plan(["x60"], ["memset"])[0]
    alias = RunRequest(platform="SpacemiT X60", workload="memset",
                       spec=request.spec)
    result = sweep([request, alias, request], workers=0,
                   store=fresh_store(tmp_path))
    assert [outcome.status for outcome in result.outcomes] == [
        "executed", "deduplicated", "deduplicated"]
    bodies = {outcome.body() for outcome in result.outcomes}
    assert len(bodies) == 1


def test_sweep_without_store_executes_everything():
    plan = build_plan(["x60"], ["memset"])
    first = sweep(plan, workers=0, store=None)
    again = sweep(plan, workers=0, store=None)
    assert first.counts()["executed"] == again.counts()["executed"] == 1
    assert first.cache_stats is None
    assert first.outcomes[0].body() == again.outcomes[0].body()


def test_bypass_cache_reexecutes_but_refills(tmp_path):
    store = fresh_store(tmp_path)
    plan = build_plan(["x60"], ["memset"])
    sweep(plan, workers=0, store=store)
    bypassed = sweep(plan, workers=0, store=store, bypass_cache=True)
    assert bypassed.counts()["executed"] == 1
    assert bypassed.bypassed
    served = sweep(plan, workers=0, store=fresh_store(tmp_path))
    assert served.all_from_cache


def test_corrupted_result_entry_silently_reexecutes(tmp_path):
    """The acceptance bar: corruption costs a re-run, never an error, and
    the re-executed payload is byte-identical."""
    store = fresh_store(tmp_path)
    plan = build_plan(["x60"], ["memset"])
    first = sweep(plan, workers=0, store=store)
    key = first.outcomes[0].cell.key
    path = store.entry_path(RESULT_KIND, key)
    with open(path, "r+b") as handle:
        handle.seek(10)
        handle.write(b"\x00\x00\x00\x00")

    store = fresh_store(tmp_path)
    second = sweep(plan, workers=0, store=store)
    assert second.counts() == {"hit": 0, "executed": 1, "deduplicated": 0,
                               "resumed": 0, "error": 0}
    assert second.outcomes[0].body() == first.outcomes[0].body()
    assert store.integrity_failures == 1
    # The re-execution re-filled the entry.
    third = sweep(plan, workers=0, store=fresh_store(tmp_path))
    assert third.all_from_cache


def test_sweep_results_come_back_in_plan_order(tmp_path):
    """Scheduling reorders execution (platform/workload grouping), but the
    outcomes must follow the plan."""
    plan = build_plan(["u74", "x60"], ["memset", "dot-product"])
    result = sweep(plan, workers=0, store=fresh_store(tmp_path))
    assert [(outcome.cell.platform, outcome.cell.workload)
            for outcome in result.outcomes] == [
        ("SiFive U74", "memset"), ("SiFive U74", "dot-product"),
        ("SpacemiT X60", "memset"), ("SpacemiT X60", "dot-product")]


# -- service interop ----------------------------------------------------------------------


def test_sweep_filled_store_serves_the_service_result_cache(tmp_path):
    """One result namespace: the daemon's ResultCache hits on sweep-filled
    entries without re-executing."""
    from repro.service.cache import ResultCache
    store = fresh_store(tmp_path)
    plan = build_plan(["x60"], ["memset"])
    result = sweep(plan, workers=0, store=store)
    outcome = result.outcomes[0]

    cache = ResultCache(store=DiskCache(store.root))
    body = cache.get(outcome.cell.key)
    assert body == outcome.body()
    assert cache.stats()["disk_hits"] == 1


def test_service_filled_cache_serves_a_sweep(tmp_path):
    from repro.service.cache import ResultCache
    store = fresh_store(tmp_path)
    plan = build_plan(["x60"], ["memset"])
    baseline = sweep(plan, workers=0, store=None)
    cache = ResultCache(store=store)
    cache.put(baseline.outcomes[0].cell.key, baseline.outcomes[0].body())

    served = sweep(plan, workers=0, store=DiskCache(store.root))
    assert served.all_from_cache
    assert served.outcomes[0].body() == baseline.outcomes[0].body()


# -- trajectory export --------------------------------------------------------------------


def test_trajectory_document_schema(tmp_path):
    plan = build_plan(["x60"], ["memset", "dot-product"])
    result = sweep(plan, workers=0, store=fresh_store(tmp_path))
    out = tmp_path / "BENCH_sweep.json"
    doc = result.write_trajectory(str(out), elapsed_seconds=1.25)
    assert json.loads(out.read_text()) == doc
    assert doc["schema"] == TRAJECTORY_SCHEMA
    assert doc["totals"] == {"cells": 2, "hits": 0, "executed": 2,
                             "deduplicated": 0, "resumed": 0, "failed": 0,
                             "with_errors": 0}
    assert doc["elapsed_seconds"] == 1.25
    assert doc["cache"]["writes"] >= 2
    for cell in doc["cells"]:
        assert set(cell) >= {"platform", "workload", "cpus", "key", "status"}
        assert cell["status"] == "executed"


# -- CLI ----------------------------------------------------------------------------------


def test_cli_sweep_twice_skips_every_cell(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    out = str(tmp_path / "BENCH_sweep.json")
    argv = ["sweep", "--platforms", "x60", "--workloads", "memset",
            "dot-product", "--out", out]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "executed: 2" in first
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "hits: 2" in second
    assert "executed: 0" in second
    doc = json.loads(open(out).read())
    assert doc["totals"]["executed"] == 0


def test_cli_sweep_axis_flag(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "axis-cache"))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    out = str(tmp_path / "BENCH_sweep.json")
    assert main(["sweep", "--platforms", "x60", "--workloads", "memset",
                 "--axis", "enable_vectorizer=true,false",
                 "--out", out, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["totals"]["cells"] == 2
    assert doc["totals"]["executed"] == 2


def test_cli_cache_stats_verify_clear(tmp_path, monkeypatch, capsys):
    from repro.compiler.cache import clear_memory_cache
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-cli"))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    clear_memory_cache()  # force a cold compile so module entries hit disk
    assert main(["sweep", "--platforms", "x60", "--workloads", "memset",
                 "--out", str(tmp_path / "t.json")]) == 0
    capsys.readouterr()

    assert main(["cache", "stats", "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] >= 2
    assert set(stats["kinds"]) >= {"module", "result"}

    assert main(["cache", "verify", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["corrupt"] == 0
    assert report["checked"] == stats["entries"]

    assert main(["cache", "clear", "--json"]) == 0
    cleared = json.loads(capsys.readouterr().out)
    assert cleared["removed"] == stats["entries"]
    assert main(["cache", "stats", "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 0


def test_cli_cache_verify_flags_corruption(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "verify-cli"))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    store = DiskCache(str(tmp_path / "verify-cli"))
    store.put("module", cache_key("module", {"n": 1}), b"payload")
    path = store.entry_path("module", cache_key("module", {"n": 1}))
    with open(path, "r+b") as handle:
        handle.write(b"BAD!")
    assert main(["cache", "verify", "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["corrupt"] == 1 and report["removed"] == 1


def test_cli_cache_disabled_is_an_error(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_DISK_CACHE", "off")
    assert main(["cache", "stats"]) == 1
    assert "disabled" in capsys.readouterr().err
