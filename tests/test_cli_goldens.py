"""Golden-file regression tests for the CLI's machine-consumable output.

Every modelled machine, scheduler and workload in the repo is deterministic
by construction (seeded generators, deterministic round-robin scheduling,
cycle-approximate timing with no wall-clock inputs), so the full ``--json``
export of a CLI run is reproducible byte for byte -- across runs, dispatch
engines and Python versions.  These tests pin the exports of the four
subcommands the paper's tables are built from (``stat``, ``record``,
``compare``, ``capabilities``) against checked-in goldens.

When an output change is intentional, bless it with::

    PYTHONPATH=src python -m pytest tests/test_cli_goldens.py --update-goldens

and review the golden diff like any other code change.
"""

import json
import os

import pytest

from repro.api.run import strip_timings as _strip_timings
from repro.toolchain.cli import main as cli_main

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: Golden file -> the CLI invocation that must keep producing it.
CASES = {
    "capabilities.json": [
        "capabilities", "--json",
    ],
    "stat_matmul_parallel_x60_2harts.json": [
        "stat", "--workload", "matmul-parallel", "-n", "8",
        "--cpus", "2", "-p", "x60", "--json",
    ],
    "record_forkjoin_x60_2harts.json": [
        "record", "--workload", "forkjoin-calltree",
        "--cpus", "2", "-p", "x60", "--period", "2000", "--json",
    ],
    "compare_forkjoin_x60_c910.json": [
        "compare", "--platforms", "SpacemiT X60", "T-Head C910",
        "--workload", "forkjoin-calltree", "--cpus", "2",
        "--period", "2000", "--json",
    ],
    "analyze_stream_triad_mt_x60_2harts.json": [
        "analyze", "--workload", "stream-triad-mt",
        "--cpus", "2", "-p", "x60", "--json",
    ],
}


def _capture(capsys, argv):
    code = cli_main(list(argv))
    out = capsys.readouterr().out
    assert code == 0, f"{argv} exited with {code}"
    return out


# Wall-clock phase timings are the one intentionally non-deterministic field
# a Run exports; golden comparisons exclude them (and the goldens are stored
# without them) via the same canonical strip_timings the wire format and
# Run.deterministic_dict() use.


def _normalize(out: str) -> str:
    return json.dumps(_strip_timings(json.loads(out)), indent=2) + "\n"


@pytest.mark.parametrize("name,argv", sorted(CASES.items()),
                         ids=sorted(CASES))
def test_cli_json_matches_golden(name, argv, capsys, request):
    out = _capture(capsys, argv)
    normalized = _normalize(out)          # always a valid JSON document
    path = os.path.join(GOLDEN_DIR, name)
    if request.config.getoption("--update-goldens"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(normalized)
        return
    assert os.path.exists(path), (
        f"golden {name} missing; generate it with --update-goldens"
    )
    with open(path, "r", encoding="utf-8") as handle:
        golden = handle.read()
    assert normalized == golden, (
        f"{' '.join(argv)} diverged from tests/goldens/{name}; if the change "
        "is intentional, rerun with --update-goldens and review the diff"
    )


def test_stat_golden_is_engine_independent(capsys):
    """--no-fast-dispatch must reproduce the same golden except for the spec
    field that names the engine -- the differential property, CLI-level."""
    argv = CASES["stat_matmul_parallel_x60_2harts.json"]
    fast = _strip_timings(json.loads(_capture(capsys, argv)))
    slow = _strip_timings(json.loads(_capture(capsys, argv + ["--no-fast-dispatch"])))
    assert fast["spec"]["fast_dispatch"] is True
    assert slow["spec"]["fast_dispatch"] is False
    fast["spec"].pop("fast_dispatch")
    slow["spec"].pop("fast_dispatch")
    assert fast == slow
