"""Tests for the KernelC frontend and the execution engine (semantics)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.frontend import compile_source
from repro.compiler.frontend.lexer import Lexer, LexerError, TokenKind
from repro.compiler.frontend.parser import ParseError, Parser
from repro.compiler.frontend.sema import SemanticAnalyzer, SemanticError
from repro.vm import ExecutionEngine, ExternalCallError, Memory
from repro.workloads.kernels import (
    DOT_PRODUCT_SOURCE,
    MATMUL_NAIVE_SOURCE,
    MATMUL_TILED_SOURCE,
    STENCIL_SOURCE,
    STREAM_TRIAD_SOURCE,
)


def run_function(source, name, args, memory=None):
    module = compile_source(source, "test.c")
    engine = ExecutionEngine(module, memory=memory or Memory())
    return engine.run(name, args)


class TestLexer:
    def test_tokens(self):
        tokens = Lexer("long x = 42; // comment\nfloat y = 1.5f;").tokens()
        kinds = [t.kind for t in tokens]
        assert TokenKind.KEYWORD in kinds
        assert TokenKind.INT_LITERAL in kinds
        assert TokenKind.FLOAT_LITERAL in kinds
        assert tokens[-1].kind is TokenKind.EOF

    def test_block_comments_skipped(self):
        tokens = Lexer("/* hi \n there */ int x;").tokens()
        assert tokens[0].is_keyword("int")

    def test_unknown_character(self):
        with pytest.raises(LexerError):
            Lexer("int x = @;").tokens()


class TestParserAndSema:
    def test_parse_error_reports_position(self):
        with pytest.raises(ParseError):
            Parser("void f( {}").parse()

    def test_undeclared_identifier(self):
        unit = Parser("long f() { return y; }").parse()
        with pytest.raises(SemanticError):
            SemanticAnalyzer(unit).analyze()

    def test_redeclaration(self):
        unit = Parser("void f() { long x = 0; long x = 1; }").parse()
        with pytest.raises(SemanticError):
            SemanticAnalyzer(unit).analyze()

    def test_void_return_with_value(self):
        unit = Parser("void f() { return 1; }").parse()
        with pytest.raises(SemanticError):
            SemanticAnalyzer(unit).analyze()

    def test_call_arity_checked(self):
        source = "long g(long x) { return x; } long f() { return g(1, 2); }"
        unit = Parser(source).parse()
        with pytest.raises(SemanticError):
            SemanticAnalyzer(unit).analyze()

    def test_break_outside_loop(self):
        unit = Parser("void f() { break; }").parse()
        with pytest.raises(SemanticError):
            SemanticAnalyzer(unit).analyze()

    def test_subscript_of_scalar(self):
        unit = Parser("long f(long x) { return x[0]; }").parse()
        with pytest.raises(SemanticError):
            SemanticAnalyzer(unit).analyze()


class TestExecutionSemantics:
    def test_arithmetic_and_control_flow(self):
        source = """
        long collatz_steps(long x) {
          long steps = 0;
          while (x > 1) {
            if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
            steps++;
          }
          return steps;
        }
        """
        assert run_function(source, "collatz_steps", [6]) == 8
        assert run_function(source, "collatz_steps", [1]) == 0

    def test_for_loop_sum(self):
        source = """
        long sum_to(long n) {
          long total = 0;
          for (long i = 1; i <= n; i++) { total += i; }
          return total;
        }
        """
        assert run_function(source, "sum_to", [100]) == 5050

    def test_break_and_continue(self):
        source = """
        long count_odds_until(long limit, long stop) {
          long count = 0;
          for (long i = 0; i < limit; i++) {
            if (i == stop) { break; }
            if (i % 2 == 0) { continue; }
            count++;
          }
          return count;
        }
        """
        assert run_function(source, "count_odds_until", [100, 10]) == 5

    def test_float_math_and_casts(self):
        source = """
        float average(float* values, long n) {
          float total = 0.0;
          for (long i = 0; i < n; i++) { total += values[i]; }
          return total / (float)n;
        }
        """
        memory = Memory()
        address = memory.alloc_float_array([1.0, 2.0, 3.0, 4.0])
        result = run_function(source, "average", [address, 4], memory)
        assert result == pytest.approx(2.5)

    def test_nested_function_calls(self):
        source = """
        long square(long x) { return x * x; }
        long sum_of_squares(long n) {
          long total = 0;
          for (long i = 1; i <= n; i++) { total += square(i); }
          return total;
        }
        """
        assert run_function(source, "sum_of_squares", [5]) == 55

    def test_builtin_math_external(self):
        source = "float root(float x) { return sqrtf(x); }"
        assert run_function(source, "root", [9.0]) == pytest.approx(3.0)

    def test_unknown_external_raises(self):
        from repro.compiler.ir import FunctionType, F32
        module = compile_source("float f(float x) { return x; }", "t.c")
        module.declare_function("mystery", FunctionType(F32, [F32]))
        from repro.compiler.ir.builder import IRBuilder
        function = module.get_function("f")
        # Rewire f to call the unknown external.
        engine = ExecutionEngine(module)
        with pytest.raises(ExternalCallError):
            engine._dispatch_external("mystery", [1.0])

    def test_dot_product_matches_python(self):
        memory = Memory()
        a = [0.5 * i for i in range(64)]
        b = [1.0 - 0.01 * i for i in range(64)]
        pa = memory.alloc_float_array(a)
        pb = memory.alloc_float_array(b)
        result = run_function(DOT_PRODUCT_SOURCE, "dot", [pa, pb, 64], memory)
        import struct
        expected = 0.0
        for x, y in zip(a, b):
            x32 = struct.unpack("<f", struct.pack("<f", x))[0]
            y32 = struct.unpack("<f", struct.pack("<f", y))[0]
            expected += x32 * y32
        assert result == pytest.approx(expected, rel=1e-5)

    def test_triad_and_stencil_write_expected_values(self):
        memory = Memory()
        n = 32
        b = [float(i) for i in range(n)]
        c = [2.0] * n
        pa = memory.alloc_float_array([0.0] * n)
        pb = memory.alloc_float_array(b)
        pc = memory.alloc_float_array(c)
        run_function(STREAM_TRIAD_SOURCE, "triad", [pa, pb, pc, 3.0, n], memory)
        result = memory.read_float_array(pa, n)
        assert result == pytest.approx([b[i] + 3.0 * c[i] for i in range(n)])

    @pytest.mark.parametrize("source,name", [
        (MATMUL_TILED_SOURCE, "matmul_tiled"),
        (MATMUL_NAIVE_SOURCE, "matmul_naive"),
    ])
    def test_matmul_matches_numpy(self, source, name):
        import numpy as np
        n = 8
        memory = Memory()
        rng = np.random.default_rng(3)
        a = rng.random(n * n, dtype=np.float32)
        b = rng.random(n * n, dtype=np.float32)
        pa = memory.alloc_float_array(list(map(float, a)))
        pb = memory.alloc_float_array(list(map(float, b)))
        pc = memory.alloc_float_array([0.0] * (n * n))
        run_function(source, name, [pa, pb, pc, n], memory)
        got = np.array(memory.read_float_array(pc, n * n), dtype=np.float32)
        expected = (a.reshape(n, n) @ b.reshape(n, n)).flatten()
        assert np.allclose(got, expected, rtol=1e-4)


class TestMemoryModel:
    def test_malloc_alignment_and_growth(self):
        memory = Memory()
        a = memory.malloc(100)
        b = memory.malloc(100)
        assert b > a
        assert a % 16 == 0 and b % 16 == 0

    def test_typed_roundtrip(self):
        from repro.compiler.ir import F32, F64, I32, I64
        memory = Memory()
        address = memory.malloc(64)
        memory.store_typed(address, I64, -123456789)
        assert memory.load_typed(address, I64) == -123456789
        memory.store_typed(address + 8, F64, 3.25)
        assert memory.load_typed(address + 8, F64) == 3.25
        memory.store_typed(address + 16, F32, 1.5)
        assert memory.load_typed(address + 16, F32) == 1.5
        memory.store_typed(address + 24, I32, 2 ** 31)  # wraps
        assert memory.load_typed(address + 24, I32) == -(2 ** 31)

    def test_unmapped_access_raises(self):
        from repro.vm.memory import MemoryError_
        memory = Memory()
        with pytest.raises(MemoryError_):
            memory.read_bytes(0x999999999, 8)

    def test_stack_frames_reset(self):
        memory = Memory()
        token = memory.push_stack_frame()
        first = memory.stack_alloc(64)
        memory.pop_stack_frame(token)
        token2 = memory.push_stack_frame()
        second = memory.stack_alloc(64)
        assert first == second

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_float_array_roundtrip(self, values):
        import struct
        memory = Memory()
        address = memory.alloc_float_array(values)
        expected = [struct.unpack("<f", struct.pack("<f", v))[0] for v in values]
        assert memory.read_float_array(address, len(values)) == pytest.approx(expected)
