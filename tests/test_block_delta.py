"""Differential suite for the retirement/cache fast paths and the executor.

Three layers of evidence that the perf subsystem changes nothing observable:

* property tests -- randomly generated memory-free/branch-free straight-line
  kernels (seeded) retire identically through block-delta signatures and
  through per-op accounting, and :meth:`CoreTimingModel.retire_block_delta`
  itself matches a per-op :meth:`retire` loop op for op;
* an on/off sweep -- every registered workload on every modelled platform,
  full ``Run.to_dict()`` equality (minus spec and wall-clock timings)
  between all fast paths enabled and all fast paths disabled, in counting
  mode everywhere and in sampling mode on the X60 (sampling is the mode
  that forces block deltas to expand back into per-op retirement);
* executor tests -- ``run_many``/``Session.compare(workers=N)`` return
  bit-identical results to the serial path, in request order.

Plus the Session.compare platform-validation bugfix and the Run timings
surface.
"""

import random

import pytest

from repro.api import ProfileSpec, RunRequest, Session, run_many
from repro.miniperf.stat import DEFAULT_STAT_EVENTS
from repro.platforms import Machine, all_platforms, spacemit_x60
from repro.workloads import registry

PLATFORMS = [descriptor.name for descriptor in all_platforms()]

#: Small parameters so the full sweep stays in the fast lane.
SMALL_PARAMS = {
    "sqlite3-like": {"scale": 1},
    "micro-calltree": {"scale": 1},
    "forkjoin-calltree": {"scale": 1},
    "matmul-tiled": {"n": 12},
    "matmul-naive": {"n": 12},
    "matmul-parallel": {"n": 12},
    "dot-product": {"n": 256},
    "stream-triad": {"n": 256},
    "stream-triad-mt": {"n": 256},
    "stencil3": {"n": 256},
    "memset": {"n": 256},
}

WORKLOADS = sorted(registry)


def _workload(name: str):
    return registry.create(name, **SMALL_PARAMS.get(name, {}))


def _comparable_dict(run) -> dict:
    payload = run.to_dict()
    payload.pop("spec")
    payload.pop("timings", None)
    return payload


# -- property tests: random pure blocks ---------------------------------------------------


def _random_pure_source(seed: int) -> str:
    """A random straight-line kernel: arithmetic only, no loops/branches/
    arrays, so every basic block is memory-free and branch-free."""
    rng = random.Random(seed)
    float_vars = ["a", "b", "c"]
    int_vars = ["i", "j"]
    lines = []
    for index in range(rng.randint(6, 18)):
        if rng.random() < 0.6:
            lhs = f"f{index}"
            op = rng.choice(["+", "-", "*"])
            x, y = rng.choice(float_vars), rng.choice(float_vars)
            lines.append(f"  float {lhs} = {x} {op} {y};")
            float_vars.append(lhs)
        else:
            lhs = f"n{index}"
            op = rng.choice(["+", "-", "*"])
            x, y = rng.choice(int_vars), rng.choice(int_vars)
            lines.append(f"  long {lhs} = {x} {op} {y};")
            int_vars.append(lhs)
    result = " + ".join(float_vars[-3:])
    body = "\n".join(lines)
    return (f"float kernel(float a, float b, float c, long i, long j) {{\n"
            f"{body}\n  return {result};\n}}\n")


def _run_pure_kernel(source: str, block_delta: bool):
    from repro.compiler.cache import compile_source_cached
    from repro.compiler.targets import target_for_platform
    from repro.vm import ExecutionEngine, Memory

    descriptor = spacemit_x60()
    module = compile_source_cached(source, "pure.c", descriptor, True)
    machine = Machine(descriptor)
    task = machine.create_task("pure")
    engine = ExecutionEngine(module, machine, target_for_platform(descriptor),
                             task=task, memory=Memory(),
                             block_delta=block_delta)
    result = engine.run("kernel", [1.5, -2.25, 3.0, 7, 11])
    return result, engine.stats, machine


@pytest.mark.parametrize("seed", range(8))
def test_random_pure_blocks_retire_identically(seed):
    """Property: on randomly generated memory-free/branch-free blocks the
    block-delta signature equals per-op retirement exactly."""
    source = _random_pure_source(seed)
    with_delta = _run_pure_kernel(source, block_delta=True)
    without = _run_pure_kernel(source, block_delta=False)
    assert with_delta[0] == without[0]
    assert with_delta[1] == without[1]                    # ExecutionStats
    assert with_delta[2].cycles == without[2].cycles
    assert with_delta[2].event_totals() == without[2].event_totals()
    # The generated kernel really exercised the delta path.
    assert with_delta[2].block_deltas, "no block qualified for a delta"


def _random_ops(seed: int):
    from repro.isa.machine_ops import MachineOp, OpClass

    rng = random.Random(seed)
    choices = [OpClass.INT_ALU, OpClass.INT_MUL, OpClass.INT_DIV,
               OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_FMA,
               OpClass.FP_MISC, OpClass.JUMP, OpClass.RET, OpClass.NOP]
    return [MachineOp(rng.choice(choices), pc=0x1000 + 4 * index)
            for index in range(rng.randint(1, 40))]


@pytest.mark.parametrize("seed", range(12))
def test_retire_block_delta_matches_per_op_retire(seed):
    """retire_block_delta == a retire() loop: cycles, totals, event pulses --
    including repeated executions riding the memoized remainder walk."""
    descriptor = spacemit_x60()
    ops = _random_ops(seed)

    reference = Machine(descriptor)
    delta_machine = Machine(descriptor)
    delta = delta_machine.core.block_delta_for(ops)
    for _ in range(5):
        for op in ops:
            reference.core.retire(op)
        delta_machine.core.retire_block_delta(delta)

    assert delta_machine.cycles == reference.cycles
    assert delta_machine.instructions == reference.instructions
    assert delta_machine.event_totals() == reference.event_totals()
    assert (delta_machine.core._cycle_remainder
            == reference.core._cycle_remainder)
    assert delta.walk_cache                    # the walk memo was exercised


def test_block_delta_rejects_memory_and_branch_ops():
    from repro.isa.machine_ops import branch, load

    core = Machine(spacemit_x60()).core
    with pytest.raises(ValueError, match="memory-free"):
        core.block_delta_for([load(8, address=0x1000)])
    with pytest.raises(ValueError, match="branch-free"):
        core.block_delta_for([branch(True, target=1, pc=4)])


# -- on/off differential sweep ------------------------------------------------------------


COUNTING_SPEC = ProfileSpec(analyses=("stat",), events=DEFAULT_STAT_EVENTS)
SAMPLING_SPEC = ProfileSpec(sample_period=2_000,
                            analyses=("hotspots", "flamegraph"))


def _sweep_run(platform: str, name: str, spec: ProfileSpec, fast: bool):
    if not fast:
        spec = spec.without_fast_paths()
    return Session(platform).run(_workload(name), spec)


@pytest.mark.slow
@pytest.mark.parametrize("platform", PLATFORMS)
@pytest.mark.parametrize("name", WORKLOADS)
def test_counting_identical_with_fast_paths_off(name, platform):
    """Every registered workload x every platform: full Run.to_dict equality
    between all fast paths on and all fast paths off, counting mode."""
    fast = _sweep_run(platform, name, COUNTING_SPEC, fast=True)
    slow = _sweep_run(platform, name, COUNTING_SPEC, fast=False)
    assert _comparable_dict(fast) == _comparable_dict(slow)


def test_fast_lane_canary_matmul_differential():
    """Fast-lane canary of the sweep: counting + sampling, matmul-tiled, X60
    (the full workload x platform matrix runs in the slow lane)."""
    for spec in (COUNTING_SPEC, SAMPLING_SPEC):
        fast = _sweep_run("SpacemiT X60", "matmul-tiled", spec, fast=True)
        slow = _sweep_run("SpacemiT X60", "matmul-tiled", spec, fast=False)
        assert _comparable_dict(fast) == _comparable_dict(slow)


@pytest.mark.slow
@pytest.mark.parametrize("name", WORKLOADS)
def test_sampling_identical_with_fast_paths_off(name):
    """Sampling mode (block deltas must expand back to per-op retirement):
    identical sample streams, hotspots and flame graphs on the X60."""
    fast = _sweep_run("SpacemiT X60", name, SAMPLING_SPEC, fast=True)
    slow = _sweep_run("SpacemiT X60", name, SAMPLING_SPEC, fast=False)
    assert _comparable_dict(fast) == _comparable_dict(slow)
    if fast.recording is not None and name == "sqlite3-like":
        # The sweep isn't vacuous: the big workload actually samples.
        assert fast.recording.sample_count > 0


# -- parallel run executor ----------------------------------------------------------------


class TestRunMany:
    REQUESTS = [
        RunRequest(platform="SpacemiT X60", workload="matmul-tiled",
                   params={"n": 12}, spec=ProfileSpec().counting()),
        RunRequest(platform="Intel Core i5-1135G7", workload="matmul-tiled",
                   params={"n": 12}, spec=ProfileSpec().counting()),
        RunRequest(platform="T-Head C910", workload="sqlite3-like",
                   params={"scale": 1}, spec=ProfileSpec(sample_period=5_000)),
    ]

    def test_workers_match_serial_in_request_order(self):
        serial = run_many(self.REQUESTS, workers=1)
        parallel = run_many(self.REQUESTS, workers=2)
        assert [run.platform for run in parallel] == \
            ["SpacemiT X60", "Intel Core i5-1135G7", "T-Head C910"]
        for serial_run, parallel_run in zip(serial, parallel):
            assert _comparable_dict(serial_run) == _comparable_dict(parallel_run)

    def test_workload_objects_cross_the_pool_when_picklable(self):
        workload = registry.create("stream-triad", n=256)
        requests = [RunRequest(platform=name, workload=workload,
                               spec=ProfileSpec().counting())
                    for name in ("SpacemiT X60", "SiFive U74")]
        runs = run_many(requests, workers=2)
        assert [run.platform for run in runs] == ["SpacemiT X60", "SiFive U74"]
        assert all(run.stat is not None for run in runs)

    def test_failed_analyses_survive_the_pool(self):
        """A Run carrying PerfEventOpenError/SamplingNotSupportedError in
        ``failures`` must cross the process boundary (the exceptions pickle),
        degrading exactly like the serial path instead of breaking the pool."""
        spec = ProfileSpec(vendor_driver=False)        # X60 cannot sample then
        platforms = ["SpacemiT X60", "SiFive U74"]
        serial = Session.compare(platforms, "memset", spec)
        parallel = Session.compare(platforms, "memset", spec, workers=2)
        for serial_run, parallel_run in zip(serial.runs, parallel.runs):
            assert parallel_run.errors == serial_run.errors
            assert "sampling" in parallel_run.errors
            assert type(parallel_run.failures["sampling"]) is \
                type(serial_run.failures["sampling"])

    def test_custom_descriptor_profiled_as_given(self):
        """A caller-built PlatformDescriptor travels whole to the workers:
        results match the serial path, not the stock registry platform."""
        import dataclasses

        from repro.platforms import spacemit_x60

        stock = spacemit_x60()
        custom = dataclasses.replace(
            stock, core=dataclasses.replace(stock.core, frequency_hz=8.0e8))
        spec = ProfileSpec().counting()
        serial = Session.compare([custom, "SiFive U74"], "memset", spec)
        parallel = Session.compare([custom, "SiFive U74"], "memset", spec,
                                   workers=2)
        assert _comparable_dict(parallel.runs[0]) == \
            _comparable_dict(serial.runs[0])

    def test_unpicklable_workload_raises_cleanly(self):
        class Opaque:
            name = "opaque"
            handle = lambda self: None      # noqa: E731 -- deliberately unpicklable

        request = RunRequest(platform="SpacemiT X60",
                             workload=Opaque().handle,
                             spec=ProfileSpec().counting())
        with pytest.raises(ValueError, match="registry name"):
            run_many([request, request], workers=2)


class TestCompareWorkers:
    def test_compare_workers_bit_identical_to_serial(self):
        spec = ProfileSpec(sample_period=5_000)
        serial = Session.compare(["SpacemiT X60", "Intel Core i5-1135G7"],
                                 "sqlite3-like", spec,
                                 workload_params={"scale": 1})
        parallel = Session.compare(["SpacemiT X60", "Intel Core i5-1135G7"],
                                   "sqlite3-like", spec, workers=2,
                                   workload_params={"scale": 1})
        assert [run.platform for run in parallel.runs] == \
            [run.platform for run in serial.runs]
        for serial_run, parallel_run in zip(serial.runs, parallel.runs):
            assert _comparable_dict(serial_run) == _comparable_dict(parallel_run)
        assert parallel.flame_diffs.keys() == serial.flame_diffs.keys()
        for platform in serial.flame_diffs:
            assert parallel.flame_diffs[platform] == serial.flame_diffs[platform]


# -- Session.compare platform validation (bugfix) ------------------------------------------


class TestComparePlatformValidation:
    def test_unknown_platform_lists_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            Session.compare(["SpacemiT X60", "Amiga 500"], "sqlite3-like")
        message = str(excinfo.value)
        assert "Amiga 500" in message
        for name in PLATFORMS:
            assert name in message

    def test_duplicate_platform_rejected(self):
        with pytest.raises(ValueError, match="duplicate platform"):
            Session.compare(["SpacemiT X60", "SpacemiT X60"], "sqlite3-like")

    def test_duplicate_via_alias_rejected(self):
        # The short alias resolves to the same descriptor as the full name.
        with pytest.raises(ValueError, match="duplicate platform"):
            Session.compare(["x60", "SpacemiT X60"], "sqlite3-like")

    def test_empty_platform_list_rejected(self):
        with pytest.raises(ValueError, match="at least one platform"):
            Session.compare([], "sqlite3-like")

    def test_workload_params_require_registry_name(self):
        with pytest.raises(ValueError, match="registry name"):
            Session.compare(["SpacemiT X60"],
                            registry.create("sqlite3-like", scale=1),
                            workload_params={"scale": 2})


# -- wall-clock phase timings --------------------------------------------------------------


class TestRunTimings:
    def test_timings_phases_present_and_exported(self):
        run = Session("SpacemiT X60").run(_workload("matmul-tiled"),
                                          ProfileSpec().counting())
        assert set(run.timings) == {"compile", "execute", "analyses"}
        assert all(isinstance(value, float) and value >= 0.0
                   for value in run.timings.values())
        assert run.timings["execute"] > 0.0
        assert set(run.to_dict()["timings"]) == {"compile", "execute", "analyses"}
        assert "SpacemiT X60" in run.format_timings()
        assert "execute" in run.format_timings()

    def test_smp_run_reports_timings(self):
        run = Session("SpacemiT X60").run(
            _workload("matmul-parallel"),
            ProfileSpec(analyses=("stat",)).with_cpus(2))
        assert set(run.timings) == {"compile", "execute", "analyses"}
        assert run.timings["execute"] > 0.0

    def test_cli_timings_flag(self, capsys):
        from repro.toolchain.cli import main as cli_main
        code = cli_main(["stat", "--workload", "matmul-tiled", "-n", "12",
                         "-p", "x60", "--timings"])
        assert code == 0
        err = capsys.readouterr().err
        assert "compile" in err and "execute" in err
