"""Static race certification vs recorded per-hart access sets.

For every shipped parallel workload and every hart count the static
detector's verdict must match what a real instrumented SMP run records:
containment (every recorded heap access inside the thread's static
regions) and verdict agreement (disjoint/shared/racy over recorded bytes).
Plus the negative control: an intentionally racy workload -- two threads
handed the *same* triad arrays -- must be flagged ``racy`` statically.
"""

import pytest

from repro.analysis.races import (
    KernelShardPlan,
    analyze_parallel_workload,
    check_consistency,
    record_thread_access_sets,
    supports_shard_plans,
)
from repro.api import ProfileSpec
from repro.platforms import platform_by_name
from repro.vm import Memory
from repro.workloads import registry
from repro.workloads.parallel import TRIAD_SLICE_SOURCE

DESCRIPTOR = platform_by_name("SpacemiT X60")
SPEC = ProfileSpec().counting()

PARAMS = {
    "matmul-parallel": {"n": 12},
    "stream-triad-mt": {"n": 256},
    "forkjoin-calltree": {"scale": 1},
}

#: The constructive sharing story of each shipped parallel workload:
#: matmul shares its B (and A) inputs read-only once there are >= 2
#: threads; the triad slices and the fork/join traces are fully disjoint.
EXPECTED = {
    ("matmul-parallel", 1): "disjoint",
    ("matmul-parallel", 2): "shared",
    ("matmul-parallel", 4): "shared",
    ("stream-triad-mt", 1): "disjoint",
    ("stream-triad-mt", 2): "disjoint",
    ("stream-triad-mt", 4): "disjoint",
    ("forkjoin-calltree", 1): "disjoint",
    ("forkjoin-calltree", 2): "disjoint",
    ("forkjoin-calltree", 4): "disjoint",
}


@pytest.mark.parametrize("cpus", [1, 2, 4])
@pytest.mark.parametrize("name", sorted(PARAMS))
def test_static_verdict_matches_recorded_run(name, cpus):
    workload = registry.create(name, **PARAMS[name])
    report = analyze_parallel_workload(workload, cpus, SPEC, DESCRIPTOR)
    assert report.verdict == EXPECTED[name, cpus]
    assert not report.notes, report.notes

    recorded = record_thread_access_sets(workload, cpus, SPEC, DESCRIPTOR)
    assert sorted(recorded.by_thread) == sorted(
        region.thread for region in {r.thread: r for r in report.regions}.values()
    )
    assert recorded.dynamic_verdict() == report.verdict
    assert check_consistency(report, recorded) == []


def test_matmul_shared_overlaps_are_all_read_read():
    workload = registry.create("matmul-parallel", n=12)
    report = analyze_parallel_workload(workload, 2, SPEC, DESCRIPTOR)
    assert report.overlaps
    assert all(overlap.kind == "shared" for overlap in report.overlaps)
    shared = {overlap.first.label for overlap in report.overlaps}
    shared |= {overlap.second.label for overlap in report.overlaps}
    # Only the input matrices are shared; C rows are thread-private.
    assert "C" not in shared


class _RacyTriad:
    """Two threads handed the same arrays: both write a[0:n] -- a race."""

    name = "racy-triad"

    def __init__(self, n: int = 64):
        self.n = n
        memory = Memory()
        self.args = (
            memory.alloc_float_array([0.0] * n),
            memory.alloc_float_array([1.0] * n),
            memory.alloc_float_array([2.0] * n),
            3.0,
            n,
        )

    def shard_plans(self, cpus, spec):
        return [
            KernelShardPlan(thread=f"racy-worker-{index}",
                            source=TRIAD_SLICE_SOURCE, filename="triad.c",
                            function="triad", args=self.args)
            for index in range(max(1, cpus))
        ]


def test_intentionally_racy_workload_is_flagged():
    report = analyze_parallel_workload(_RacyTriad(), 2, SPEC, DESCRIPTOR)
    assert report.verdict == "racy"
    racy = [o for o in report.overlaps if o.kind == "racy"]
    assert racy
    # The written array is part of at least one racy overlap.
    labels = {o.first.label for o in racy} | {o.second.label for o in racy}
    assert "a" in labels


def test_workload_without_shard_plans_is_unknown_not_guessed():
    class Opaque:
        name = "opaque"

    assert not supports_shard_plans(Opaque())
    report = analyze_parallel_workload(Opaque(), 2, SPEC, DESCRIPTOR)
    assert report.verdict == "unknown"
    assert report.notes


def test_report_to_dict_round_trips_regions_and_overlaps():
    workload = registry.create("matmul-parallel", n=12)
    report = analyze_parallel_workload(workload, 2, SPEC, DESCRIPTOR)
    payload = report.to_dict()
    assert payload["workload"] == "matmul-parallel"
    assert payload["verdict"] == report.verdict
    assert len(payload["regions"]) == len(report.regions)
    assert all(r["lo"] < r["hi"] for r in payload["regions"])
    assert len(payload["overlaps"]) == len(report.overlaps)
