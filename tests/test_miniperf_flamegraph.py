"""Tests for miniperf (cpuid, group planning, stat/record/report) and flame graphs."""

import pytest

from repro.cpu.events import HwEvent
from repro.flamegraph import (
    build_flame_graph,
    diff_flame_graphs,
    fold_stacks,
    render_svg,
    render_text,
)
from repro.kernel.ring_buffer import SampleRecord
from repro.miniperf import Miniperf, identify_machine, plan_sampling_group
from repro.miniperf.cpuid import UnknownCpuError, identify
from repro.miniperf.correction import reconcile_group_samples, scale_multiplexed
from repro.miniperf.groups import SamplingNotSupportedError
from repro.isa.csr import CpuIdentity
from repro.kernel.perf_event import PerfReadValue
from repro.platforms import Machine, intel_i5_1135g7, sifive_u74, spacemit_x60, thead_c910
from repro.workloads.sqlite3_like import sqlite3_like_workload
from repro.workloads.synthetic import InstructionMix, SyntheticFunction, SyntheticWorkload, TraceExecutor


class TestCpuid:
    def test_identify_all_platforms(self):
        for descriptor in (spacemit_x60(), sifive_u74(), thead_c910(), intel_i5_1135g7()):
            info = identify_machine(Machine(descriptor))
            assert descriptor.name == info.core

    def test_x60_needs_workaround(self):
        info = identify_machine(Machine(spacemit_x60()))
        assert info.needs_group_leader_workaround
        assert info.workaround_leader_event is HwEvent.U_MODE_CYCLE
        assert info.sampling_possible

    def test_u74_cannot_sample(self):
        info = identify_machine(Machine(sifive_u74()))
        assert not info.sampling_possible

    def test_unknown_vendor_rejected(self):
        with pytest.raises(UnknownCpuError):
            identify(CpuIdentity(mvendorid=0xABCDEF, marchid=0, mimpid=0))


class TestGroupPlanning:
    def test_x60_plan_uses_vendor_leader(self):
        info = identify_machine(Machine(spacemit_x60()))
        plan = plan_sampling_group(info, [HwEvent.CYCLES, HwEvent.INSTRUCTIONS], 10_000)
        assert plan.used_workaround
        assert plan.leader_event is HwEvent.U_MODE_CYCLE
        assert plan.member_events == [HwEvent.CYCLES, HwEvent.INSTRUCTIONS]
        assert "workaround" in plan.describe()

    def test_intel_plan_is_direct(self):
        info = identify_machine(Machine(intel_i5_1135g7()))
        plan = plan_sampling_group(info, [HwEvent.CYCLES, HwEvent.INSTRUCTIONS], 10_000)
        assert not plan.used_workaround
        assert plan.leader_event is HwEvent.CYCLES
        assert plan.member_events == [HwEvent.INSTRUCTIONS]

    def test_u74_plan_raises(self):
        info = identify_machine(Machine(sifive_u74()))
        with pytest.raises(SamplingNotSupportedError):
            plan_sampling_group(info, [HwEvent.CYCLES], 1000)

    def test_invalid_period(self):
        info = identify_machine(Machine(intel_i5_1135g7()))
        with pytest.raises(ValueError):
            plan_sampling_group(info, [HwEvent.CYCLES], 0)

    def test_leader_attr_has_group_read(self):
        from repro.kernel.perf_event import ReadFormat, SampleType
        info = identify_machine(Machine(spacemit_x60()))
        plan = plan_sampling_group(info, [HwEvent.CYCLES], 1000)
        attr = plan.leader_attr()
        assert SampleType.READ in attr.sample_type
        assert ReadFormat.GROUP in attr.read_format
        assert attr.sample_period == 1000


def tiny_workload() -> SyntheticWorkload:
    workload = SyntheticWorkload(name="tiny", entry="main")
    mix = InstructionMix(working_set_bytes=4096, locality=0.9)
    workload.add(SyntheticFunction("leaf_a", 3000, mix))
    workload.add(SyntheticFunction("leaf_b", 1000, mix))
    workload.add(SyntheticFunction("main", 500, mix,
                                   callees=[("leaf_a", 2), ("leaf_b", 1)]))
    return workload


class TestMiniperfStatRecord:
    def test_stat_counts_and_ipc(self):
        machine = Machine(spacemit_x60())
        tool = Miniperf(machine)
        task = machine.create_task("tiny")
        executor = TraceExecutor(machine, task, seed=1)
        result = tool.stat(lambda: executor.run(tiny_workload()), task=task)
        assert result.count(HwEvent.INSTRUCTIONS) > 5000
        assert result.count(HwEvent.CYCLES) > 0
        assert 0.0 < result.ipc < 2.5
        assert "IPC" in result.format()

    def test_record_uses_workaround_on_x60_and_direct_on_intel(self):
        for descriptor, expect_workaround in ((spacemit_x60(), True),
                                              (intel_i5_1135g7(), False)):
            machine = Machine(descriptor)
            tool = Miniperf(machine)
            task = machine.create_task("tiny")
            executor = TraceExecutor(machine, task, seed=1)
            recording = tool.record(lambda: executor.run(tiny_workload()),
                                    task=task, sample_period=600)
            assert recording.plan.used_workaround is expect_workaround
            assert recording.sample_count >= 3
            assert recording.total(HwEvent.INSTRUCTIONS) > 0
            assert recording.overall_ipc > 0

    def test_hotspot_report_orders_by_samples(self):
        machine = Machine(spacemit_x60())
        tool = Miniperf(machine)
        task = machine.create_task("tiny")
        executor = TraceExecutor(machine, task, seed=1)
        recording = tool.record(lambda: executor.run(tiny_workload()),
                                task=task, sample_period=1500)
        report = tool.hotspots(recording)
        assert report.total_samples == recording.sample_count
        assert report.rows[0].samples >= report.rows[-1].samples
        # leaf_a does 6000 units vs leaf_b's 1000: it must rank first.
        assert report.rows[0].function == "leaf_a"
        text = report.format()
        assert "leaf_a" in text and "IPC" in text

    @pytest.mark.slow
    def test_sqlite3_like_top_hotspots_on_x60(self):
        machine = Machine(spacemit_x60())
        tool = Miniperf(machine)
        task = machine.create_task("sqlite")
        executor = TraceExecutor(machine, task, seed=2)
        recording = tool.record(lambda: executor.run(sqlite3_like_workload()),
                                task=task, sample_period=8000)
        report = tool.hotspots(recording)
        top_names = {row.function for row in report.top(5)}
        assert "sqlite3VdbeExec" in top_names
        assert {"patternCompare", "sqlite3BtreeParseCellPtr"} & top_names


class TestCorrection:
    def test_scaling(self):
        read = PerfReadValue(value=500, time_enabled=1000, time_running=500)
        corrected = scale_multiplexed("cycles", read)
        assert corrected.scaled == pytest.approx(1000.0)
        assert corrected.multiplex_fraction == pytest.approx(0.5)

    def test_scaling_never_ran(self):
        read = PerfReadValue(value=0, time_enabled=1000, time_running=0)
        assert scale_multiplexed("cycles", read).scaled == 0.0

    def test_reconcile_group_samples(self):
        samples = [
            SampleRecord(ip=0, pid=1, tid=1, time=i, period=1, event="u_mode_cycle",
                         group_values={"u_mode_cycle": 100 * i, "cycles": 100 * i + 1})
            for i in range(1, 5)
        ]
        stats = reconcile_group_samples(samples, "u_mode_cycle", "cycles")
        assert stats["samples"] == 4
        assert stats["mean_divergence"] < 0.05
        assert stats["outlier_fraction"] == 0.0


def make_samples():
    stacks = [
        ("hot", "middle", "main"),
        ("hot", "middle", "main"),
        ("hot", "middle", "main"),
        ("cold", "main"),
    ]
    samples = []
    for i, chain in enumerate(stacks):
        samples.append(SampleRecord(
            ip=i, pid=1, tid=1, time=i, period=1, event="cycles",
            callchain=chain,
            group_values={"instructions": (i + 1) * 100, "cycles": (i + 1) * 120},
        ))
    return samples


class TestFlameGraph:
    def test_structure_and_weights(self):
        root = build_flame_graph(make_samples())
        assert root.value == 4
        main = root.find("main")
        assert main is not None and main.value == 4
        hot = root.find("hot")
        assert hot.value == 3 and hot.self_value == 3
        assert root.frame_fraction("hot") == pytest.approx(0.75)

    def test_event_weighting_uses_deltas(self):
        root = build_flame_graph(make_samples(), weight="instructions")
        # Deltas are 100 per sample: total 400.
        assert root.value == 400

    def test_folded_output(self):
        lines = fold_stacks(make_samples())
        assert "main;middle;hot 3" in lines
        assert "main;cold 1" in lines

    def test_text_and_svg_render(self):
        root = build_flame_graph(make_samples())
        text = render_text(root, width=60)
        assert "main" in text
        svg = render_svg(root, title="test")
        assert svg.startswith("<svg") and "main" in svg

    def test_diff(self):
        a = build_flame_graph(make_samples())
        b = build_flame_graph(make_samples()[:3])   # only the hot path
        diffs = diff_flame_graphs(a, b)
        by_name = {d.function: d for d in diffs}
        assert by_name["cold"].fraction_b == 0.0
        assert by_name["hot"].fraction_b > by_name["hot"].fraction_a

    def test_empty_flame_graph(self):
        root = build_flame_graph([])
        assert render_text(root) == "(empty flame graph)"
