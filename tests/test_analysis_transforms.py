"""Tests for CFG analyses, loop/region detection and the transformation passes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.analysis import DominatorTree, LoopInfo, RegionInfo, reverse_postorder
from repro.compiler.analysis.cfg import predecessors, reachable_blocks
from repro.compiler.frontend import compile_source
from repro.compiler.ir import print_module, verify_module
from repro.compiler.transforms import (
    CodeExtractor,
    ConstantFoldPass,
    DeadCodeEliminationPass,
    LoopVectorizePass,
    PromoteScalarsPass,
    RooflineInstrumentationPass,
    SimplifyCfgPass,
    build_roofline_pipeline,
    clone_function,
    default_optimization_pipeline,
)
from repro.compiler.transforms.regpromote import REG_PROMOTED_KEY
from repro.compiler.transforms.roofline_pass import MPERF_LOOPS_KEY
from repro.compiler.transforms.vectorize import VECTOR_WIDTH_KEY
from repro.vm import ExecutionEngine, Memory
from repro.workloads.kernels import MATMUL_TILED_SOURCE

DOT_SOURCE = """
float dot(float* a, float* b, long n) {
  float sum = 0.0;
  for (long i = 0; i < n; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}
"""

NESTED_SOURCE = """
void smooth(float* dst, float* src, long n, long iters) {
  for (long it = 0; it < iters; it++) {
    for (long i = 1; i < n - 1; i++) {
      dst[i] = 0.5f * (src[i - 1] + src[i + 1]);
    }
  }
}
"""


class TestAnalyses:
    def test_dominators_of_loop(self):
        module = compile_source(DOT_SOURCE, "dot.c")
        function = module.get_function("dot")
        domtree = DominatorTree(function)
        entry = function.entry_block
        assert domtree.immediate_dominator(entry) is None
        for block in function.blocks:
            assert domtree.dominates(entry, block)
        rpo = reverse_postorder(function)
        assert rpo[0] is entry
        assert set(rpo) == reachable_blocks(function)

    def test_dominance_frontier_of_join(self):
        source = """
        long pick(long c, long a, long b) {
          long r = 0;
          if (c > 0) { r = a; } else { r = b; }
          return r;
        }
        """
        module = compile_source(source, "pick.c")
        function = module.get_function("pick")
        domtree = DominatorTree(function)
        frontier = domtree.dominance_frontier()
        join = function.block_by_name("if.end1")
        then_block = function.block_by_name("if.then0")
        assert join is not None and then_block is not None
        assert join in frontier[then_block]

    def test_loop_info_single_loop(self):
        module = compile_source(DOT_SOURCE, "dot.c")
        loop_info = LoopInfo(module.get_function("dot"))
        assert len(loop_info.top_level_loops) == 1
        loop = loop_info.top_level_loops[0]
        assert loop.depth == 1
        assert loop.preheader is not None
        assert loop.single_exit_block is not None
        assert loop_info.is_loop_header(loop.header)

    def test_loop_nesting_depth(self):
        module = compile_source(MATMUL_TILED_SOURCE, "mm.c")
        loop_info = LoopInfo(module.get_function("matmul_tiled"))
        assert len(loop_info.top_level_loops) == 1
        assert len(loop_info.all_loops()) == 6
        depths = sorted(l.depth for l in loop_info.all_loops())
        assert depths == [1, 2, 3, 4, 5, 6]

    def test_two_sibling_loops(self):
        module = compile_source(NESTED_SOURCE, "sm.c")
        loop_info = LoopInfo(module.get_function("smooth"))
        assert len(loop_info.top_level_loops) == 1
        assert len(loop_info.all_loops()) == 2

    def test_sese_region_for_loop_nest(self):
        module = compile_source(MATMUL_TILED_SOURCE, "mm.c")
        function = module.get_function("matmul_tiled")
        regions = RegionInfo(function).top_level_regions()
        assert len(regions) == 1
        region = regions[0]
        assert region.entry is regions[0].loop.header
        assert region.exit not in region.blocks

    def test_loop_with_return_is_not_sese(self):
        source = """
        long find(long* values, long n, long needle) {
          for (long i = 0; i < n; i++) {
            if (values[i] == needle) { return i; }
          }
          return 0 - 1;
        }
        """
        module = compile_source(source, "find.c")
        function = module.get_function("find")
        region_info = RegionInfo(function)
        assert region_info.top_level_regions() == []


class TestCleanupPasses:
    def test_constant_folding(self):
        source = "long f(long x) { return x + 2 * 3 + (10 - 4); }"
        module = compile_source(source, "f.c")
        pass_ = ConstantFoldPass()
        changed = pass_.run_on_function(module.get_function("f"))
        assert changed
        verify_module(module)
        engine = ExecutionEngine(module)
        assert engine.run("f", [1]) == 13

    def test_dce_removes_unused(self):
        # The expression statement computes a value nothing consumes.
        source = "long f(long x) { x * 17; return x; }"
        module = compile_source(source, "f.c")
        before = module.get_function("f").instruction_count()
        DeadCodeEliminationPass().run_on_function(module.get_function("f"))
        verify_module(module)
        assert module.get_function("f").instruction_count() < before
        assert ExecutionEngine(module).run("f", [5]) == 5

    def test_simplifycfg_merges_blocks(self):
        source = "long f(long x) { if (1) { x = x + 1; } return x; }"
        module = compile_source(source, "f.c")
        function = module.get_function("f")
        ConstantFoldPass().run_on_function(function)
        before = len(function.blocks)
        SimplifyCfgPass().run_on_function(function)
        verify_module(module)
        assert len(function.blocks) < before
        assert ExecutionEngine(module).run("f", [4]) == 5

    def test_promote_scalars_marks_locals_not_arrays(self):
        module = compile_source(DOT_SOURCE, "dot.c")
        function = module.get_function("dot")
        PromoteScalarsPass().run_on_function(function)
        marked = [i for i in function.instructions()
                  if i.metadata.get(REG_PROMOTED_KEY)]
        assert marked, "scalar locals should be marked"
        # Array element accesses (through gep results) must not be marked.
        from repro.compiler.ir.instructions import GetElementPtr, Load
        for inst in function.instructions():
            if isinstance(inst, Load) and isinstance(inst.pointer, GetElementPtr):
                assert not inst.metadata.get(REG_PROMOTED_KEY)

    def test_pipeline_preserves_semantics(self):
        module = compile_source(DOT_SOURCE, "dot.c")
        default_optimization_pipeline(vector_width=4).run(module)
        verify_module(module)
        memory = Memory()
        a = memory.alloc_float_array([1.0, 2.0, 3.0])
        b = memory.alloc_float_array([4.0, 5.0, 6.0])
        engine = ExecutionEngine(module, memory=memory)
        assert engine.run("dot", [a, b, 3]) == pytest.approx(32.0)


class TestVectorizer:
    def test_reduction_loop_is_vectorized(self):
        module = compile_source(DOT_SOURCE, "dot.c")
        function = module.get_function("dot")
        PromoteScalarsPass().run_on_function(function)
        pass_ = LoopVectorizePass(vector_width=8)
        assert pass_.run_on_function(function)
        annotated = [i for i in function.instructions()
                     if i.metadata.get(VECTOR_WIDTH_KEY) == 8]
        assert annotated
        assert function.metadata.get("mperf.vector_loops")

    def test_loop_with_call_not_vectorized(self):
        source = """
        float helper(float x) { return x * 2.0f; }
        float apply(float* a, long n) {
          float sum = 0.0;
          for (long i = 0; i < n; i++) { sum += helper(a[i]); }
          return sum;
        }
        """
        module = compile_source(source, "a.c")
        function = module.get_function("apply")
        pass_ = LoopVectorizePass(vector_width=8)
        pass_.run_on_function(function)
        assert pass_.statistics["rejected_calls"] >= 1
        assert not any(i.metadata.get(VECTOR_WIDTH_KEY) for i in function.instructions())

    def test_only_innermost_loops_annotated(self):
        module = compile_source(MATMUL_TILED_SOURCE, "mm.c")
        function = module.get_function("matmul_tiled")
        pass_ = LoopVectorizePass(vector_width=8)
        pass_.run_on_function(function)
        assert pass_.statistics["vectorized"] == 1


class TestExtractorAndInstrumentation:
    def test_extractor_outlines_loop_and_preserves_semantics(self):
        module = compile_source(DOT_SOURCE, "dot.c")
        function = module.get_function("dot")
        region = RegionInfo(function).top_level_regions()[0]
        result = CodeExtractor(function, region).extract("dot_loop0_outlined")
        verify_module(module)
        assert result.outlined_function.name == "dot_loop0_outlined"
        assert module.has_function("dot_loop0_outlined")
        memory = Memory()
        a = memory.alloc_float_array([1.0, 2.0, 3.0, 4.0])
        b = memory.alloc_float_array([1.0, 1.0, 1.0, 1.0])
        engine = ExecutionEngine(module, memory=memory)
        assert engine.run("dot", [a, b, 4]) == pytest.approx(10.0)

    def test_clone_function_is_independent(self):
        module = compile_source(DOT_SOURCE, "dot.c")
        original = module.get_function("dot")
        from repro.compiler.ir import PTR
        clone = clone_function(module, original, "dot_copy", extra_params=[(PTR, "h")])
        verify_module(module)
        assert len(clone.args) == len(original.args) + 1
        assert clone.instruction_count() == original.instruction_count()
        # Mutating the clone must not affect the original.
        clone.blocks[0].instructions[0].metadata["touched"] = True
        assert "touched" not in original.blocks[0].instructions[0].metadata

    def test_roofline_pass_creates_versions_and_dispatch(self):
        module = compile_source(DOT_SOURCE, "dot.c")
        pipeline = build_roofline_pipeline(vector_width=4)
        pipeline.run(module)
        verify_module(module)
        names = set(module.functions)
        assert "dot_loop0_outlined" in names
        assert "dot_loop0_instrumented" in names
        assert MPERF_LOOPS_KEY in module.metadata
        descriptor = module.metadata[MPERF_LOOPS_KEY][0]
        assert descriptor.function == "dot"
        assert descriptor.filename.endswith(".c")

    def test_instrumented_clone_counts_match_block_structure(self):
        from repro.compiler.transforms.roofline_pass import RUNTIME_BLOCK_EXEC
        module = compile_source(DOT_SOURCE, "dot.c")
        build_roofline_pipeline(vector_width=4).run(module)
        instrumented = module.get_function("dot_loop0_instrumented")
        from repro.compiler.ir.instructions import Call
        calls = [i for i in instrumented.instructions()
                 if isinstance(i, Call) and i.callee_name == RUNTIME_BLOCK_EXEC]
        # One counting call per basic block.
        assert len(calls) == len(instrumented.blocks)

    def test_instrumented_semantics_identical(self):
        from repro.platforms import spacemit_x60, Machine
        from repro.compiler.targets import target_for_platform
        from repro.runtime import RooflineRuntime
        module = compile_source(DOT_SOURCE, "dot.c")
        build_roofline_pipeline(vector_width=4).run(module)
        descriptor = spacemit_x60()
        for instrumented in (False, True):
            machine = Machine(descriptor)
            memory = Memory()
            a = memory.alloc_float_array([2.0] * 16)
            b = memory.alloc_float_array([0.5] * 16)
            runtime = RooflineRuntime(module, machine, instrumented=instrumented)
            engine = ExecutionEngine(module, machine, target_for_platform(descriptor),
                                     memory=memory, external_handlers=[runtime])
            assert engine.run("dot", [a, b, 16]) == pytest.approx(16.0)
            assert len(runtime.records) == 1
            record = runtime.records[0]
            if instrumented:
                assert record.fp_ops == 2 * 16
                assert record.total_bytes == 16 * 8   # two f32 loads per element
            else:
                assert record.fp_ops == 0             # baseline records time only

    def test_instrument_first_ablation_still_verifies(self):
        module = compile_source(DOT_SOURCE, "dot.c")
        build_roofline_pipeline(vector_width=4, instrument_first=True).run(module)
        verify_module(module)
        assert module.has_function("dot_loop0_instrumented")


class TestVerifyEachWiring:
    """Satellite of the static-analysis subsystem: the IR verifier runs
    between passes when requested, and failures localise the culprit."""

    def _module(self):
        return compile_source(DOT_SOURCE, "dot.c")

    def test_broken_pass_is_named_with_function_and_block(self):
        from repro.compiler.ir.verifier import VerificationError
        from repro.compiler.transforms.pass_manager import ModulePass, PassManager

        class DropTerminators(ModulePass):
            name = "drop-terminators"

            def run_on_module(self, module):
                for function in module.defined_functions():
                    entry = function.entry_block
                    entry.instructions = [i for i in entry.instructions
                                          if not i.is_terminator]
                return True

        manager = PassManager(verify_each=True)
        manager.add(ConstantFoldPass()).add(DropTerminators())
        with pytest.raises(VerificationError) as excinfo:
            manager.run(self._module())
        message = str(excinfo.value)
        assert "after pass 'drop-terminators'" in message
        assert "dot/entry" in message and "terminator" in message

    def test_without_verify_each_one_final_verification_still_guards(self):
        from repro.compiler.ir.verifier import VerificationError
        from repro.compiler.transforms.pass_manager import ModulePass, PassManager

        class DropTerminators(ModulePass):
            name = "drop-terminators"

            def run_on_module(self, module):
                for function in module.defined_functions():
                    entry = function.entry_block
                    entry.instructions = [i for i in entry.instructions
                                          if not i.is_terminator]
                return True

        manager = PassManager(verify_each=False)
        manager.add(DropTerminators())
        with pytest.raises(VerificationError, match="after the pass pipeline"):
            manager.run(self._module())

    def test_env_flag_requests_verification(self, monkeypatch):
        from repro.compiler.transforms.pipeline import (
            VERIFY_IR_ENV,
            resolve_verify_each,
            verify_ir_requested,
        )

        monkeypatch.delenv(VERIFY_IR_ENV, raising=False)
        assert not verify_ir_requested()
        assert resolve_verify_each(None) is False
        assert resolve_verify_each(True) is True
        monkeypatch.setenv(VERIFY_IR_ENV, "1")
        assert verify_ir_requested()
        assert resolve_verify_each(None) is True
        assert resolve_verify_each(False) is False
        monkeypatch.setenv(VERIFY_IR_ENV, "0")
        assert not verify_ir_requested()

    def test_spec_carries_verify_ir_through_compile_cache(self):
        from repro.api import ProfileSpec
        from repro.compiler.cache import compile_source_cached
        from repro.platforms import spacemit_x60

        spec = ProfileSpec()
        assert spec.verify_ir is False
        verifying = spec.with_ir_verification()
        assert verifying.verify_ir is True
        assert verifying.to_dict()["verify_ir"] is True
        # A verified compile produces the same (cached, certified) module.
        module = compile_source_cached(DOT_SOURCE, "dot.c", spacemit_x60(),
                                       True, verify_ir=True)
        assert module.get_function("dot") is not None
