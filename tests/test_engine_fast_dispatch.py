"""Interpreter semantics fixes and fast-vs-slow dispatch equivalence.

Covers the unsigned division/remainder semantics, libm NaN behaviour of
``fminf``/``fmaxf``, zero-count handling in the group-sample reconciliation,
and -- the load-bearing property of the fast-dispatch engine -- that the
predecoded/batched execution path produces bit-identical PMU state (counter
values, multiplex times, sample counts and sample contents) to the reference
instruction-at-a-time interpreter.
"""

import math
from dataclasses import replace

import pytest

from repro.compiler.frontend import compile_source
from repro.compiler.ir import F32, I32, I64, FunctionType, IRBuilder, Module
from repro.compiler.targets import target_for_platform
from repro.compiler.transforms import build_roofline_pipeline
from repro.cpu.events import HwEvent
from repro.kernel.perf_event import PerfEventAttr, ReadFormat, SampleType
from repro.kernel.ring_buffer import SampleRecord
from repro.miniperf.correction import reconcile_group_samples
from repro.platforms import Machine, intel_i5_1135g7, spacemit_x60
from repro.runtime import RooflineRuntime
from repro.vm import ExecutionEngine, Memory
from repro.vm.engine import _BUILTIN_MATH
from repro.workloads import (
    DOT_PRODUCT_SOURCE,
    MATMUL_TILED_SOURCE,
    dot_args_builder,
    matmul_args_builder,
)


def _binop_module(opcode, type_):
    module = Module("m")
    function = module.create_function("f", FunctionType(type_, [type_, type_]),
                                      ["a", "b"])
    builder = IRBuilder(function.add_block("entry"))
    builder.ret(builder.binary(opcode, function.args[0], function.args[1]))
    return module


@pytest.mark.parametrize("fast", [True, False], ids=["fast", "slow"])
class TestUnsignedDivRem:
    """udiv/urem must operate on the unsigned (masked) representation."""

    def _run(self, opcode, a, b, fast, type_=I32):
        module = _binop_module(opcode, type_)
        return ExecutionEngine(module, fast_dispatch=fast).run("f", [a, b])

    def test_udiv_negative_representation_dividend(self, fast):
        # -8 as i32 is 0xFFFFFFF8; unsigned division by 2 gives 0x7FFFFFFC.
        assert self._run("udiv", -8, 2, fast) == 0xFFFFFFF8 // 2

    def test_urem_negative_representation_dividend(self, fast):
        assert self._run("urem", -8, 3, fast) == 0xFFFFFFF8 % 3

    def test_udiv_negative_representation_divisor(self, fast):
        # 10 / 0xFFFFFFFF == 0 in unsigned arithmetic (not -10 as the signed
        # reuse used to produce).
        assert self._run("udiv", 10, -1, fast) == 0

    def test_urem_negative_representation_divisor(self, fast):
        assert self._run("urem", 10, -1, fast) == 10

    def test_udiv_urem_by_zero(self, fast):
        assert self._run("udiv", 7, 0, fast) == 0
        assert self._run("urem", 7, 0, fast) == 0

    def test_udiv_i64_result_wraps_to_signed_representation(self, fast):
        # UINT64_MAX / 1 is UINT64_MAX, represented as -1 in the engine.
        assert self._run("udiv", -1, 1, fast, type_=I64) == -1

    def test_signed_div_rem_unchanged(self, fast):
        assert self._run("sdiv", -8, 3, fast) == -2
        assert self._run("srem", -8, 3, fast) == -2
        assert self._run("sdiv", -8, 2, fast) == -4
        assert self._run("sdiv", 7, 0, fast) == 0


@pytest.mark.parametrize("fast", [True, False], ids=["fast", "slow"])
class TestFloatSemantics:
    """IEEE-754 corner cases shared by both dispatch paths."""

    def _run_binop(self, opcode, a, b, fast):
        module = _binop_module(opcode, F32)
        return ExecutionEngine(module, fast_dispatch=fast).run("f", [a, b])

    def test_fdiv_by_zero_is_signed_infinity(self, fast):
        assert self._run_binop("fdiv", 1.0, 0.0, fast) == float("inf")
        assert self._run_binop("fdiv", -1.0, 0.0, fast) == float("-inf")

    def test_fdiv_zero_over_zero_is_nan(self, fast):
        assert math.isnan(self._run_binop("fdiv", 0.0, 0.0, fast))
        assert math.isnan(self._run_binop("fdiv", float("nan"), 0.0, fast))

    def test_fcmp_one_is_ordered(self, fast):
        # "one" is ordered-AND-unequal: false whenever an operand is NaN.
        module = Module("m")
        function = module.create_function("f", FunctionType(I32, [F32, F32]),
                                          ["a", "b"])
        builder = IRBuilder(function.add_block("entry"))
        compare = builder.fcmp("one", function.args[0], function.args[1])
        builder.ret(builder.cast("zext", compare, I32))
        engine = ExecutionEngine(module, fast_dispatch=fast)
        nan = float("nan")
        assert engine.run("f", [nan, 1.0]) == 0
        assert engine.run("f", [nan, nan]) == 0
        assert engine.run("f", [1.0, 2.0]) == 1
        assert engine.run("f", [1.0, 1.0]) == 0


class TestLibmMinMax:
    """fminf/fmaxf follow libm: a NaN operand loses to the non-NaN one."""

    def test_nan_loses(self):
        nan = float("nan")
        assert _BUILTIN_MATH["fminf"](nan, 2.0) == 2.0
        assert _BUILTIN_MATH["fminf"](2.0, nan) == 2.0
        assert _BUILTIN_MATH["fmaxf"](nan, 2.0) == 2.0
        assert _BUILTIN_MATH["fmaxf"](2.0, nan) == 2.0

    def test_both_nan_is_nan(self):
        nan = float("nan")
        assert math.isnan(_BUILTIN_MATH["fminf"](nan, nan))
        assert math.isnan(_BUILTIN_MATH["fmaxf"](nan, nan))

    def test_ordered_operands(self):
        assert _BUILTIN_MATH["fminf"](1.0, 2.0) == 1.0
        assert _BUILTIN_MATH["fmaxf"](1.0, 2.0) == 2.0
        assert _BUILTIN_MATH["fminf"](-0.5, 3.0) == -0.5

    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "slow"])
    def test_engine_external_dispatch(self, fast):
        module = Module("m")
        function = module.create_function("f", FunctionType(F32, [F32, F32]),
                                          ["a", "b"])
        module.declare_function("fminf", FunctionType(F32, [F32, F32]))
        builder = IRBuilder(function.add_block("entry"))
        result = builder.call("fminf", [function.args[0], function.args[1]], F32)
        builder.ret(result)
        engine = ExecutionEngine(module, fast_dispatch=fast)
        assert engine.run("f", [float("nan"), 3.5]) == 3.5


def _sample(leader, cycles):
    return SampleRecord(ip=0, pid=1, tid=1, time=0, period=100,
                        event="u_mode_cycle",
                        group_values={"u_mode_cycle": leader, "cycles": cycles})


class TestReconcileGroupSamples:
    def test_zero_zero_counts_as_zero_divergence(self):
        stats = reconcile_group_samples([_sample(0, 0), _sample(100, 100)],
                                        "u_mode_cycle")
        assert stats["samples"] == 2
        assert stats["mean_divergence"] == 0.0
        assert stats["outlier_fraction"] == 0.0

    def test_zero_vs_nonzero_counts_as_full_divergence(self):
        stats = reconcile_group_samples([_sample(0, 50)], "u_mode_cycle")
        assert stats["samples"] == 1
        assert stats["mean_divergence"] == 1.0
        assert stats["outlier_fraction"] == 1.0

    def test_missing_values_are_still_skipped(self):
        record = SampleRecord(ip=0, pid=1, tid=1, time=0, period=1, event="x",
                              group_values={})
        stats = reconcile_group_samples([record], "u_mode_cycle")
        assert stats["samples"] == 0

    def test_divergent_samples_flagged(self):
        stats = reconcile_group_samples([_sample(80, 100)], "u_mode_cycle",
                                        tolerance=0.05)
        assert stats["samples"] == 1
        assert stats["mean_divergence"] == pytest.approx(0.2)
        assert stats["outlier_fraction"] == 1.0


def _compiled(source, descriptor, filename):
    module = compile_source(source, filename)
    build_roofline_pipeline(vector_width=descriptor.vector.sp_lanes()).run(module)
    return module


class TestFastSlowPmuEquivalence:
    """The fast engine must be indistinguishable from the reference one."""

    def _run_sampled(self, fast):
        """Sampled run on the X60 via the paper's workaround group."""
        descriptor = spacemit_x60()
        machine = Machine(descriptor)
        task = machine.create_task("dot")
        module = _compiled(DOT_PRODUCT_SOURCE, descriptor, "dot.c")
        memory = Memory()
        args = dot_args_builder(1024)(memory)
        attr = PerfEventAttr(
            event=HwEvent.U_MODE_CYCLE,
            sample_period=400,
            sample_type=frozenset({SampleType.IP, SampleType.TIME,
                                   SampleType.CALLCHAIN, SampleType.READ,
                                   SampleType.PERIOD}),
            read_format=frozenset({ReadFormat.GROUP}),
        )
        fd = machine.perf.perf_event_open(attr, task)
        machine.perf.perf_event_open(PerfEventAttr(event=HwEvent.CYCLES),
                                     task, group_fd=fd)
        ring = machine.perf.mmap(fd)
        machine.perf.enable(fd)
        runtime = RooflineRuntime(module, machine, instrumented=False)
        engine = ExecutionEngine(module, machine, target_for_platform(descriptor),
                                 task=task, memory=memory,
                                 external_handlers=[runtime], fast_dispatch=fast)
        result = engine.run("dot", args)
        machine.perf.disable(fd)
        read = machine.perf.read(fd)
        return (result, read, ring.drain(), machine.event_totals(),
                machine.cycles, machine.instructions, engine.stats)

    def test_sampled_run_bit_identical(self):
        fast = self._run_sampled(True)
        slow = self._run_sampled(False)
        assert fast[0] == slow[0]
        # Counter values and multiplex times.
        assert fast[1].value == slow[1].value
        assert fast[1].time_enabled == slow[1].time_enabled
        assert fast[1].time_running == slow[1].time_running
        assert fast[1].group == slow[1].group
        # Sample counts AND full sample contents (ip, time, callchain, group
        # readouts) -- overflow interrupts must fire at the same ops.
        assert len(fast[2]) == len(slow[2])
        assert len(fast[2]) > 0
        for fast_sample, slow_sample in zip(fast[2], slow[2]):
            # pids are allocated from a process-global counter, so the two
            # runs legitimately differ there; everything else must match.
            assert replace(fast_sample, pid=0, tid=0) == \
                replace(slow_sample, pid=0, tid=0)
        assert fast[3] == slow[3]
        assert fast[4] == slow[4] and fast[5] == slow[5]
        assert fast[6] == slow[6]

    def _run_counting(self, fast):
        """Counting-only run (the batch-aggregated machine path)."""
        descriptor = intel_i5_1135g7()
        machine = Machine(descriptor)
        task = machine.create_task("matmul")
        module = _compiled(MATMUL_TILED_SOURCE, descriptor, "matmul.c")
        memory = Memory()
        args = matmul_args_builder(10)(memory)
        fds = [machine.perf.perf_event_open(PerfEventAttr(event=event), task)
               for event in (HwEvent.CYCLES, HwEvent.INSTRUCTIONS,
                             HwEvent.BRANCH_INSTRUCTIONS)]
        for fd in fds:
            machine.perf.enable(fd)
        runtime = RooflineRuntime(module, machine, instrumented=False)
        engine = ExecutionEngine(module, machine, target_for_platform(descriptor),
                                 task=task, memory=memory,
                                 external_handlers=[runtime], fast_dispatch=fast)
        engine.run("matmul_tiled", args)
        for fd in fds:
            machine.perf.disable(fd)
        reads = [machine.perf.read(fd) for fd in fds]
        return ([(r.value, r.time_enabled, r.time_running) for r in reads],
                machine.event_totals(), machine.cycles, engine.stats)

    def test_counting_run_bit_identical(self):
        assert self._run_counting(True) == self._run_counting(False)

    def _run_multiplexed(self, fast):
        """More events than generic counters, with a rotation mid-workload."""
        descriptor = spacemit_x60()
        machine = Machine(descriptor)
        task = machine.create_task("dot")
        module = _compiled(DOT_PRODUCT_SOURCE, descriptor, "dot.c")
        events = [HwEvent.CACHE_REFERENCES, HwEvent.CACHE_MISSES,
                  HwEvent.BRANCH_INSTRUCTIONS, HwEvent.BRANCH_MISSES,
                  HwEvent.L1D_LOADS, HwEvent.L1D_LOAD_MISSES,
                  HwEvent.L1D_STORES, HwEvent.LOADS_RETIRED]
        fds = [machine.perf.perf_event_open(PerfEventAttr(event=event), task)
               for event in events]
        for fd in fds:
            machine.perf.enable(fd)

        def run_once(n):
            memory = Memory()
            args = dot_args_builder(n)(memory)
            runtime = RooflineRuntime(module, machine, instrumented=False)
            engine = ExecutionEngine(module, machine,
                                     target_for_platform(descriptor),
                                     task=task, memory=memory,
                                     external_handlers=[runtime],
                                     fast_dispatch=fast)
            engine.run("dot", args)

        run_once(256)
        machine.perf.rotate()
        run_once(256)
        for fd in fds:
            machine.perf.disable(fd)
        reads = [machine.perf.read(fd) for fd in fds]
        # At least one event must actually have been multiplexed out.
        assert any(r.time_running < r.time_enabled for r in reads)
        return [(r.value, r.time_enabled, r.time_running, r.scaled_value)
                for r in reads]

    def test_multiplexed_run_bit_identical(self):
        assert self._run_multiplexed(True) == self._run_multiplexed(False)
