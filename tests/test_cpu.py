"""Tests for the cache hierarchy, branch predictors and core timing models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.branch import AlwaysTakenPredictor, GsharePredictor
from repro.cpu.cache import Cache, CacheConfig, CacheHierarchy, MemoryConfig
from repro.cpu.core import CoreConfig, InOrderCore, OutOfOrderCore
from repro.cpu.events import EventBus, EventCounts, HwEvent
from repro.isa.machine_ops import MachineOp, OpClass, branch, load


def small_hierarchy():
    return CacheHierarchy(
        [CacheConfig("L1D", 1024, line_bytes=64, associativity=2, hit_latency=2),
         CacheConfig("L2", 8192, line_bytes=64, associativity=4, hit_latency=10)],
        MemoryConfig(latency_cycles=100, peak_bytes_per_cycle=4.0),
    )


class TestEventBus:
    def test_totals_accumulate(self):
        bus = EventBus()
        bus.publish(HwEvent.CYCLES, 10)
        bus.publish(HwEvent.CYCLES, 5)
        assert bus.totals.get(HwEvent.CYCLES) == 15

    def test_observers_receive_increments(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e, n: seen.append((e, n)))
        bus.publish(HwEvent.INSTRUCTIONS, 3)
        assert seen == [(HwEvent.INSTRUCTIONS, 3)]

    def test_zero_increment_is_dropped(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e, n: seen.append((e, n)))
        bus.publish(HwEvent.CYCLES, 0)
        assert seen == []

    def test_negative_increment_rejected(self):
        counts = EventCounts()
        with pytest.raises(ValueError):
            counts.add(HwEvent.CYCLES, -5)

    def test_merge(self):
        a = EventCounts({HwEvent.CYCLES: 10})
        b = EventCounts({HwEvent.CYCLES: 5, HwEvent.INSTRUCTIONS: 2})
        merged = a.merge(b)
        assert merged[HwEvent.CYCLES] == 15
        assert merged[HwEvent.INSTRUCTIONS] == 2


class TestCache:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, line_bytes=48)
        with pytest.raises(ValueError):
            CacheConfig("bad", 100, line_bytes=64, associativity=8)

    def test_repeat_access_hits(self):
        hierarchy = small_hierarchy()
        first = hierarchy.access(0x1000, 8, is_store=False)
        second = hierarchy.access(0x1000, 8, is_store=False)
        assert first.hit_level == "DRAM"
        assert second.hit_level == "L1D"
        assert second.latency < first.latency

    def test_eviction_by_capacity(self):
        hierarchy = small_hierarchy()
        # Touch far more lines than L1 can hold; early lines must be evicted.
        for i in range(64):
            hierarchy.access(i * 64, 8, is_store=False)
        result = hierarchy.access(0, 8, is_store=False)
        assert result.hit_level in ("L2", "DRAM")

    def test_writeback_counted_on_dirty_eviction(self):
        config = CacheConfig("L1", 128, line_bytes=64, associativity=1, hit_latency=1)
        hierarchy = CacheHierarchy([config], MemoryConfig(latency_cycles=50))
        hierarchy.access(0, 8, is_store=True)        # set 0, dirty
        hierarchy.access(128, 8, is_store=False)     # evicts dirty line (same set)
        assert hierarchy.levels[0].writebacks == 1
        assert hierarchy.dram_write_bytes == 64

    def test_lru_order(self):
        config = CacheConfig("L1", 128, line_bytes=64, associativity=2, hit_latency=1)
        hierarchy = CacheHierarchy([config], MemoryConfig(latency_cycles=50))
        hierarchy.access(0, 8, False)      # line A
        hierarchy.access(128, 8, False)    # line B (same set)
        hierarchy.access(0, 8, False)      # touch A: B is now LRU
        hierarchy.access(256, 8, False)    # evicts B
        assert hierarchy.access(0, 8, False).hit_level == "L1"
        assert hierarchy.access(128, 8, False).hit_level != "L1"

    def test_access_spanning_lines(self):
        hierarchy = small_hierarchy()
        result = hierarchy.access(60, 16, is_store=False)  # crosses a 64B boundary
        assert result.dram_bytes >= 128

    def test_stats_and_reset(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0, 8, False)
        stats = hierarchy.stats()
        assert stats["L1D"]["misses"] == 1
        hierarchy.reset_stats()
        assert hierarchy.stats()["L1D"]["misses"] == 0

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        hierarchy = small_hierarchy()
        for address in addresses:
            # Single-byte accesses never straddle a line, so each call is
            # exactly one L1 lookup.
            hierarchy.access(address, 1, is_store=False)
        l1 = hierarchy.levels[0]
        assert l1.hits + l1.misses == l1.accesses == len(addresses)
        assert 0.0 <= l1.miss_rate <= 1.0


class TestBranchPredictors:
    def test_gshare_learns_stable_pattern(self):
        predictor = GsharePredictor()
        for _ in range(200):
            predictor.update(0x400, 0x500, True)
        late = [predictor.update(0x400, 0x500, True) for _ in range(50)]
        assert sum(late) == 0          # no mispredictions once learned
        assert predictor.miss_rate < 0.2

    def test_always_taken_counts_not_taken_as_miss(self):
        predictor = AlwaysTakenPredictor()
        predictor.update(0, 0, False)
        predictor.update(0, 0, True)
        assert predictor.mispredictions == 1
        assert predictor.predictions == 2

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_miss_rate_bounded(self, outcomes):
        predictor = GsharePredictor()
        for taken in outcomes:
            predictor.update(0x1234, 0, taken)
        assert 0.0 <= predictor.miss_rate <= 1.0
        assert predictor.predictions == len(outcomes)

    def test_gshare_aliasing_causes_destructive_interference(self):
        """Two branches whose (pc >> 2) XOR history collide in a tiny table
        share one 2-bit counter, so opposite-biased branches fight.

        With zero history, pcs 4 table-entries apart alias; a dedicated
        per-branch table would learn both patterns perfectly.
        """
        table_entries = 1 << 2
        predictor = GsharePredictor(table_bits=2, history_bits=0)
        pc_a = 0x100                      # index (0x100 >> 2) % 4 == 0
        pc_b = pc_a + 4 * table_entries   # same index, different branch
        assert predictor._index(pc_a) == predictor._index(pc_b)
        for _ in range(100):
            predictor.update(pc_a, 0, True)
            predictor.update(pc_b, 0, False)
        # The shared counter flips on every update: ~every prediction for
        # one of the two branches is wrong, far above a per-branch learner.
        assert predictor.miss_rate > 0.4

        isolated = GsharePredictor(table_bits=12, history_bits=0)
        for _ in range(100):
            isolated.update(pc_a, 0, True)
            isolated.update(pc_b + 0x10000, 0, False)
        assert isolated.miss_rate < 0.1

    def test_gshare_history_wraps_at_history_bits(self):
        predictor = GsharePredictor(table_bits=4, history_bits=3)
        for taken in (True, True, True, True, True):
            predictor.update(0x40, 0, taken)
        # Only history_bits of history survive: 0b111, not 0b11111.
        assert predictor._history == 0b111
        predictor.update(0x40, 0, False)
        assert predictor._history == 0b110
        # Indexing stays inside the table for any pc.
        for pc in (0, 0x4, 0xFFFF_FFFC, 1 << 40):
            assert 0 <= predictor._index(pc) < (1 << 4)

    def test_gshare_rejects_bad_table_bits(self):
        with pytest.raises(ValueError):
            GsharePredictor(table_bits=0)
        with pytest.raises(ValueError):
            GsharePredictor(table_bits=25)


def make_core(out_of_order: bool):
    bus = EventBus()
    hierarchy = small_hierarchy()
    config = CoreConfig(name="test", frequency_hz=1e9, issue_width=2,
                        out_of_order=out_of_order)
    cls = OutOfOrderCore if out_of_order else InOrderCore
    return cls(config, hierarchy, bus), bus


class TestCoreTiming:
    def test_cycles_and_instructions_advance(self):
        core, bus = make_core(False)
        for _ in range(100):
            core.retire(MachineOp(OpClass.INT_ALU))
        assert core.retired_instructions == 100
        assert core.total_cycles > 0
        assert bus.totals.get(HwEvent.INSTRUCTIONS) == 100
        assert bus.totals.get(HwEvent.CYCLES) == core.total_cycles

    def test_in_order_ipc_close_to_issue_width_for_alu(self):
        core, _ = make_core(False)
        for _ in range(1000):
            core.retire(MachineOp(OpClass.INT_ALU))
        assert 1.5 <= core.ipc <= 2.05

    def test_out_of_order_hides_more_latency_than_in_order(self):
        in_order, _ = make_core(False)
        out_of_order, _ = make_core(True)
        ops = [load(8, address=(i * 64) % 4096) for i in range(500)]
        for op in ops:
            in_order.retire(op)
        for op in ops:
            out_of_order.retire(op)
        assert out_of_order.total_cycles < in_order.total_cycles

    def test_division_slower_than_alu(self):
        core_a, _ = make_core(False)
        core_b, _ = make_core(False)
        for _ in range(200):
            core_a.retire(MachineOp(OpClass.INT_ALU))
            core_b.retire(MachineOp(OpClass.INT_DIV))
        assert core_b.total_cycles > core_a.total_cycles

    def test_branch_events_published(self):
        core, bus = make_core(False)
        for i in range(100):
            core.retire(branch(taken=(i % 3 == 0), target=0x10, pc=0x40))
        assert bus.totals.get(HwEvent.BRANCH_INSTRUCTIONS) == 100
        assert bus.totals.get(HwEvent.BRANCH_MISSES) > 0

    def test_mode_cycle_events_follow_privilege(self):
        core, bus = make_core(False)
        from repro.isa.privilege import PrivilegeMode
        core.set_privilege_mode(PrivilegeMode.SUPERVISOR)
        for _ in range(50):
            core.retire(MachineOp(OpClass.INT_ALU))
        assert bus.totals.get(HwEvent.S_MODE_CYCLE) > 0
        assert bus.totals.get(HwEvent.U_MODE_CYCLE) == 0

    def test_fp_ops_event(self):
        core, bus = make_core(False)
        core.retire(MachineOp(OpClass.FP_FMA))
        core.retire(MachineOp(OpClass.VECTOR_FMA, lanes=8))
        assert bus.totals.get(HwEvent.FP_OPS_RETIRED) == 2 + 16

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(name="bad", frequency_hz=0)
        with pytest.raises(ValueError):
            CoreConfig(name="bad", frequency_hz=1e9, dependency_exposure=2.0)

    def test_elapsed_seconds(self):
        core, _ = make_core(False)
        for _ in range(100):
            core.retire(MachineOp(OpClass.INT_ALU))
        assert core.elapsed_seconds() == pytest.approx(core.total_cycles / 1e9)
