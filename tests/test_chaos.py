"""Seeded chaos suite: high-rate fault injection, byte-identical service.

The system-level invariant every test here enforces: injected faults may
cost latency or availability (retries, re-executions, 503s) but can never
change served bytes.  Corruption lands under the disk store's integrity
envelope (defect -> miss -> recompute), transport faults cost the client a
retry of an idempotent request, and worker crashes trip the breaker into
degraded cache-only mode -- hits keep serving the exact cached bytes.

The kill-and-resume test drives the full sweep robustness path: SIGKILL
mid-plan, then ``repro sweep --resume`` completes the plan without
re-executing any journaled cell.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.api.sweep import build_plan, sweep
from repro.cache.store import DiskCache
from repro.service.client import RetryPolicy, ServiceClient, ServiceError
from repro.service.daemon import BackgroundServer, ServiceConfig

_COUNTING = {"analyses": ["stat"]}


@pytest.fixture(autouse=True)
def _clean_injector():
    faults.install(None)
    yield
    faults.install(None)
    faults.reset()


# -- store chaos: 50% corruption, byte-identical sweeps -----------------------------------


def test_sweep_serves_identical_bytes_under_heavy_store_faults(tmp_path):
    """Every store fault point at up to 50%: reads flip bits, writes flip
    bits, fills truncate -- and every served payload still matches the
    fault-free golden byte for byte."""
    plan = build_plan(["x60"], ["memset", "dot-product"])
    golden = sweep(plan, workers=0, store=None)
    golden_bodies = {outcome.cell.key: outcome.body()
                     for outcome in golden.outcomes}

    faults.install("store.read_corrupt:rate=0.5:seed=1;"
                   "store.write_corrupt:rate=0.5:seed=2;"
                   "store.partial_write:rate=0.5:seed=3")
    store_root = str(tmp_path / "chaos-store")
    injured = 0
    for _round in range(6):
        store = DiskCache(store_root)
        result = sweep(plan, workers=0, store=store)
        for outcome in result.outcomes:
            assert outcome.body() == golden_bodies[outcome.cell.key], (
                f"round {_round}: {outcome.status} cell served wrong bytes")
        injured += store.integrity_failures
    assert injured > 0, "50% rates must actually corrupt something"
    stats = faults.active().stats()
    assert any(point["injections"] for point in stats.values())


def test_cache_hits_survive_corruption_as_recomputes(tmp_path):
    """A hit whose entry was corrupted becomes an executed cell with the
    same bytes -- corruption costs time, never wrongness."""
    plan = build_plan(["x60"], ["memset"])
    store_root = str(tmp_path / "hit-store")
    baseline = sweep(plan, workers=0, store=DiskCache(store_root))
    body = baseline.outcomes[0].body()

    faults.install("store.read_corrupt")  # every read corrupts
    result = sweep(plan, workers=0, store=DiskCache(store_root))
    assert result.outcomes[0].status == "executed", \
        "the corrupted entry was detected and re-executed"
    assert result.outcomes[0].body() == body


# -- daemon transport chaos ---------------------------------------------------------------


def test_client_retries_through_dropped_and_stalled_responses():
    request = {"platform": "x60", "workload": "memset", "params": {"n": 64},
               "spec": dict(_COUNTING)}
    config = ServiceConfig(port=0, workers=0, warm_kernels=False)
    with BackgroundServer(config) as server:
        plain = ServiceClient(server.address)
        golden = plain.run(request)

        faults.install("daemon.conn_drop:rate=0.4:seed=2;"
                       "daemon.stall_response:rate=0.3:seed=3:ms=20")
        retrying = ServiceClient(
            server.address,
            retry=RetryPolicy(attempts=8, base_delay=0.01, deadline=30.0))
        for _attempt in range(10):
            assert retrying.run(request) == golden
        stats = faults.active().stats()
        dropped = stats["daemon.conn_drop"]["injections"]
        assert dropped > 0, "40% must actually drop some connections"


def test_unretried_client_sees_clean_connection_errors():
    """Without a policy a dropped connection surfaces as a structured
    Unreachable ServiceError -- not a hang, not garbage bytes."""
    request = {"platform": "x60", "workload": "memset", "params": {"n": 64},
               "spec": dict(_COUNTING)}
    config = ServiceConfig(port=0, workers=0, warm_kernels=False)
    with BackgroundServer(config) as server:
        client = ServiceClient(server.address)
        golden = client.run(request)
        faults.install("daemon.conn_drop")  # drop every response
        with pytest.raises(ServiceError) as excinfo:
            client.run(request)
        assert excinfo.value.status == 0
        faults.install(None)
        assert client.run(request) == golden


# -- crash-loop breaker end to end --------------------------------------------------------


def _run_request(n):
    return {"platform": "x60", "workload": "memset", "params": {"n": n},
            "spec": dict(_COUNTING)}


def test_breaker_degrades_to_cache_only_and_probes_back():
    config = ServiceConfig(port=0, workers=0, warm_kernels=False,
                           breaker_threshold=2, breaker_window=60.0,
                           breaker_cooldown=0.2, quarantine_after=10)
    with BackgroundServer(config) as server:
        client = ServiceClient(server.address)
        cached = client.run(_run_request(64))  # fill one entry pre-chaos

        # Two distinct requests crash their (inline) worker: breaker opens.
        faults.install("pool.worker_crash:times=2")
        for n in (128, 256):
            with pytest.raises(ServiceError) as excinfo:
                client.run(_run_request(n))
            assert (excinfo.value.status,
                    excinfo.value.kind) == (500, "WorkerCrashed")

        health = client.healthz()
        assert health["status"] == "degraded"
        assert health["breaker"]["state"] in ("open", "half_open")

        # Degraded cache-only mode: the hit still serves its exact bytes...
        assert client.run(_run_request(64)) == cached
        # ...while a miss gets 503 + Retry-After instead of a worker.
        with pytest.raises(ServiceError) as excinfo:
            client.run(_run_request(512))
        assert (excinfo.value.status, excinfo.value.kind) == (503, "Degraded")
        assert excinfo.value.retry_after is not None

        # Past the cooldown the next miss is the half-open probe; the crash
        # fault is exhausted (times=2), so it succeeds and closes the
        # breaker.
        time.sleep(0.3)
        assert "run" in client.run(_run_request(512))
        assert client.healthz()["status"] == "ok"
        assert client.healthz()["breaker"]["state"] == "closed"


def test_breaker_quarantines_a_poisoned_request():
    config = ServiceConfig(port=0, workers=0, warm_kernels=False,
                           breaker_threshold=10, breaker_window=60.0,
                           quarantine_after=2)
    with BackgroundServer(config) as server:
        client = ServiceClient(server.address)
        faults.install("pool.worker_crash:times=2")
        poisoned = _run_request(1024)
        for _attempt in range(2):
            with pytest.raises(ServiceError) as excinfo:
                client.run(poisoned)
            assert excinfo.value.kind == "WorkerCrashed"
        # Third attempt: refused outright without touching the pool, even
        # though the fault is exhausted and execution would now succeed.
        with pytest.raises(ServiceError) as excinfo:
            client.run(poisoned)
        assert (excinfo.value.status,
                excinfo.value.kind) == (503, "Quarantined")
        # Other requests are unaffected.
        assert "run" in client.run(_run_request(64))
        assert client.healthz()["breaker"]["quarantined"], \
            "healthz names the quarantined key"


# -- kill-and-resume sweep ----------------------------------------------------------------


def _sweep_script(resume):
    flag = ", '--resume'" if resume else ""
    return (
        "from repro.toolchain.cli import main\n"
        "import sys\n"
        "sys.exit(main(['sweep', '--platforms', 'x60',\n"
        "               '--workloads', 'memset', 'dot-product',\n"
        f"               '--workers', '0', '--out', 'traj.json'{flag}]))\n")


def test_sigkill_mid_sweep_then_resume_completes_the_plan(tmp_path):
    """SIGKILL a sweep after its first journaled cell; --resume finishes
    the plan, re-executing nothing that was journaled complete."""
    cache_dir = str(tmp_path / "cache")
    env = dict(os.environ, REPRO_CACHE_DIR=cache_dir,
               REPRO_FAULTS="executor.slow_worker:ms=1500",
               PYTHONPATH=os.pathsep.join(
                   [os.path.join(os.getcwd(), "src"),
                    os.environ.get("PYTHONPATH", "")]).rstrip(os.pathsep))
    env.pop("REPRO_DISK_CACHE", None)
    process = subprocess.Popen(
        [sys.executable, "-c", _sweep_script(resume=False)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=str(tmp_path))
    journal_glob = os.path.join(cache_dir, "sweeps", "*.jsonl")

    def journaled_executions():
        for path in glob.glob(journal_glob):
            try:
                with open(path, encoding="utf-8") as handle:
                    records = [json.loads(line)
                               for line in handle.read().splitlines()[1:]]
            except (OSError, json.JSONDecodeError):
                continue
            done = {record["key"] for record in records
                    if record["status"] == "executed"}
            if done:
                return done
        return set()

    try:
        deadline = time.monotonic() + 120
        completed = set()
        while time.monotonic() < deadline:
            completed = journaled_executions()
            if completed or process.poll() is not None:
                break
            time.sleep(0.01)
        assert completed, "no cell was journaled before the timeout"
        assert process.poll() is None, "the sweep finished before the kill"
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    # The journal survived the SIGKILL with the completed cells recorded.
    assert journaled_executions() == completed

    env["REPRO_FAULTS"] = ""  # resume runs fault-free
    resumed = subprocess.run(
        [sys.executable, "-c", _sweep_script(resume=True)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=str(tmp_path), timeout=300)
    assert resumed.returncode == 0, resumed.stdout
    totals = json.loads(
        (tmp_path / "traj.json").read_text())["totals"]
    assert totals["cells"] == 2
    assert totals["resumed"] == len(completed), \
        "every journaled cell resumed instead of re-executing"
    assert totals["resumed"] + totals["executed"] + totals["hits"] == 2
    assert totals["failed"] == 0
    # The completed plan removed its journal.
    assert not glob.glob(journal_glob)
