"""Edge-case tests for differential flame graphs (flamegraph/diff.py) and
the SMP flame-graph merge -- previously only exercised indirectly through
Session.compare."""

import math

from repro.flamegraph import (
    FlameNode,
    build_flame_graph,
    diff_flame_graphs,
    merge_flame_graphs,
)
from repro.flamegraph.diff import FrameDiff
from repro.kernel.ring_buffer import SampleRecord


def sample(chain, time=0, cpu=0):
    return SampleRecord(ip=0x100, pid=1, tid=1, time=time, period=1,
                        event="cycles", callchain=tuple(chain), cpu=cpu)


def graph(*chains):
    return build_flame_graph([sample(chain, time=i)
                              for i, chain in enumerate(chains)])


class TestDiffEdgeCases:
    def test_two_empty_trees(self):
        assert diff_flame_graphs(FlameNode("all"), FlameNode("all")) == []

    def test_one_side_empty(self):
        populated = graph(("leaf", "main"), ("main",))
        diffs = diff_flame_graphs(FlameNode("all"), populated)
        by_name = {d.function: d for d in diffs}
        assert by_name["leaf"].fraction_a == 0.0
        assert by_name["leaf"].fraction_b == 0.5
        assert math.isinf(by_name["leaf"].ratio)
        # Empty B: every A function collapses to zero, ratio 0.
        diffs = diff_flame_graphs(populated, FlameNode("all"))
        assert all(d.fraction_b == 0.0 for d in diffs)
        assert all(d.ratio == 0.0 for d in diffs)

    def test_disjoint_roots(self):
        a = graph(("alpha_leaf", "alpha_main"))
        b = graph(("beta_leaf", "beta_main"))
        diffs = diff_flame_graphs(a, b)
        names = {d.function for d in diffs}
        assert names == {"alpha_leaf", "alpha_main", "beta_leaf", "beta_main"}
        for diff in diffs:
            # Every function exists on exactly one side.
            assert (diff.fraction_a == 0.0) != (diff.fraction_b == 0.0) or \
                (diff.fraction_a == 0.0 and diff.fraction_b == 0.0)

    def test_zero_sample_frames_are_neutral(self):
        # A frame that only ever appears as an interior node (self_value 0)
        # contributes no self-time share on either side.
        a = graph(("leaf", "wrapper", "main"))
        b = graph(("leaf", "wrapper", "main"))
        diffs = diff_flame_graphs(a, b)
        wrapper = next(d for d in diffs if d.function == "wrapper")
        assert wrapper.fraction_a == wrapper.fraction_b == 0.0
        assert wrapper.ratio == 1.0 and wrapper.delta == 0.0

    def test_zero_over_zero_ratio_is_one(self):
        diff = FrameDiff(function="f", fraction_a=0.0, fraction_b=0.0)
        assert diff.ratio == 1.0

    def test_minimum_fraction_filters_noise(self):
        a = graph(*([("hot", "main")] * 99 + [("cold", "main")]))
        b = graph(*([("hot", "main")] * 99 + [("cold", "main")]))
        kept = diff_flame_graphs(a, b, minimum_fraction=0.05)
        assert {d.function for d in kept} == {"hot"}

    def test_diffs_sorted_by_absolute_delta(self):
        a = graph(("x",), ("x",), ("y",), ("z",))
        b = graph(("x",), ("y",), ("y",), ("y",))
        diffs = diff_flame_graphs(a, b)
        deltas = [abs(d.delta) for d in diffs]
        assert deltas == sorted(deltas, reverse=True)


class TestMergeFlameGraphs:
    def test_merge_labels_and_preserves_weights(self):
        per_cpu = {
            "cpu0": graph(("leaf", "main"), ("main",)),
            "cpu1": graph(("leaf", "main")),
        }
        merged = merge_flame_graphs(per_cpu)
        assert merged.value == 3
        assert [c.name for c in merged.sorted_children()] == ["cpu0", "cpu1"]
        cpu0 = merged.children["cpu0"]
        assert cpu0.value == 2
        assert cpu0.children["main"].children["leaf"].self_value == 1

    def test_merge_skips_empty_harts(self):
        merged = merge_flame_graphs({"cpu0": graph(("f",)),
                                     "cpu1": FlameNode("all")})
        assert list(merged.children) == ["cpu0"]
        assert merged.value == 1
