"""Property-based tests (seeded, stdlib ``random``) for the SMP memory model.

The windowed bandwidth-contention model of
:class:`~repro.smp.memory.MemoryController` carries the whole SMP timing
story, so its invariants are pinned down over randomly generated access
interleavings rather than a handful of hand-written sequences:

* **determinism** -- the same access interleaving always produces the same
  per-access latencies and the same statistics;
* **monotonicity** -- a window with more distinct competing harts never makes
  an access *faster*, and steady-state round-robin latency is exactly the
  closed-form ``base * (1 + c * (k - 1))``;
* **single-hart collapse** -- one hart alone always pays exactly the base
  DRAM latency (a 1-hart SMP machine times accesses like the single-hart
  model), including after other harts age out of the window.

Every case draws its parameters from ``random.Random(seed)`` over a seed
range, so failures reproduce exactly.
"""

import random

import pytest

from repro.cpu.cache import MemoryConfig
from repro.smp.memory import MemoryController

SEEDS = range(24)


def _random_controller(rng: random.Random) -> MemoryController:
    return MemoryController(
        MemoryConfig(latency_cycles=rng.randrange(40, 400)),
        window=rng.randrange(2, 64),
        contention_per_hart=rng.choice([0.0, 0.25, 0.5, 1.0, 2.0]),
    )


def _random_interleaving(rng: random.Random, harts: int, length: int):
    return [rng.randrange(harts) for _ in range(length)]


@pytest.mark.parametrize("seed", SEEDS)
def test_contention_is_deterministic(seed):
    """Same interleaving, fresh controller: identical latencies and stats."""
    rng = random.Random(seed)
    harts = rng.randrange(1, 6)
    accesses = _random_interleaving(rng, harts, rng.randrange(50, 400))
    params = rng.getstate()

    def run():
        rng.setstate(params)
        controller = _random_controller(rng)
        latencies = [controller.access_latency(hart) for hart in accesses]
        return latencies, controller.stats()

    assert run() == run()


@pytest.mark.parametrize("seed", SEEDS)
def test_single_hart_always_pays_base_latency(seed):
    """One requester is never contended, whatever the model parameters."""
    rng = random.Random(seed)
    controller = _random_controller(rng)
    base = controller.config.latency_cycles
    hart = rng.randrange(8)
    latencies = [controller.access_latency(hart)
                 for _ in range(rng.randrange(10, 200))]
    assert set(latencies) == {base}
    assert controller.contended_accesses == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_lone_hart_collapses_back_to_base_after_window_ages_out(seed):
    """Contention is windowed: harts that stop competing stop costing."""
    rng = random.Random(seed)
    controller = _random_controller(rng)
    base = controller.config.latency_cycles
    window = controller.window
    # A burst of multi-hart traffic, then one hart running alone.
    for hart in _random_interleaving(rng, 4, rng.randrange(20, 100)):
        controller.access_latency(hart)
    solo = [controller.access_latency(0) for _ in range(window + 1)]
    # Once hart 0's own accesses fill the window, every later access is flat.
    assert solo[-1] == base
    assert all(latency == base for latency in solo[window:])


@pytest.mark.parametrize("seed", SEEDS)
def test_latency_monotone_in_competing_harts(seed):
    """Round-robin over k harts: steady-state latency is closed-form and
    non-decreasing in k."""
    rng = random.Random(seed)
    base = rng.randrange(40, 400)
    contention = rng.choice([0.0, 0.25, 0.5, 1.0])
    window = rng.randrange(8, 64)
    steady = []
    for k in (1, 2, 3, 4):
        controller = MemoryController(MemoryConfig(latency_cycles=base),
                                      window=window,
                                      contention_per_hart=contention)
        latencies = [controller.access_latency(index % k)
                     for index in range(window + 4 * k)]
        # After the window is saturated with all k harts the latency settles.
        settled = latencies[-1]
        assert settled == int(base * (1.0 + contention * (k - 1)))
        steady.append(settled)
    assert steady == sorted(steady)


@pytest.mark.parametrize("seed", SEEDS)
def test_more_competitors_never_speed_up_an_access(seed):
    """Pointwise monotonicity: replaying a hart's accesses with extra
    competitors interleaved never lowers any of that hart's latencies."""
    rng = random.Random(seed)
    base = rng.randrange(40, 400)
    contention = rng.choice([0.25, 0.5, 1.0])
    window = rng.randrange(4, 32)
    count = rng.randrange(10, 60)

    def hart0_latencies(competitors: int):
        controller = MemoryController(MemoryConfig(latency_cycles=base),
                                      window=window,
                                      contention_per_hart=contention)
        observed = []
        for _ in range(count):
            observed.append(controller.access_latency(0))
            for competitor in range(1, competitors + 1):
                controller.access_latency(competitor)
        return observed

    alone = hart0_latencies(0)
    for competitors in (1, 2, 3):
        contended = hart0_latencies(competitors)
        previous = hart0_latencies(competitors - 1)
        assert all(now >= was for now, was in zip(contended, alone))
        assert all(now >= was for now, was in zip(contended, previous))
        assert sum(contended) >= sum(previous)
