"""Tests for the unified profiling-session API (repro.api)."""

import json

import pytest

from repro.api import (
    CompiledKernelWorkload,
    Comparison,
    ProfileSpec,
    Run,
    Session,
    SyntheticTraceWorkload,
    Workload,
)
from repro.cpu.events import HwEvent
from repro.platforms import intel_i5_1135g7, sifive_u74, spacemit_x60
from repro.workloads import registry
from repro.workloads.kernels import DOT_PRODUCT_SOURCE, dot_args_builder
from repro.workloads.registry import micro_calltree_workload

FAST_SPEC = ProfileSpec(sample_period=2_000)


class TestProfileSpec:
    def test_defaults(self):
        spec = ProfileSpec()
        assert spec.events == (HwEvent.CYCLES, HwEvent.INSTRUCTIONS)
        assert spec.wants_sampling and not spec.wants_stat
        assert not spec.wants_roofline

    def test_with_roofline_appends_once(self):
        spec = ProfileSpec().with_roofline()
        assert spec.analyses == ("hotspots", "flamegraph", "roofline")
        assert spec.with_roofline() is spec

    def test_counting_mode(self):
        spec = ProfileSpec().counting()
        assert spec.wants_stat and not spec.wants_sampling

    def test_immutable_derivation(self):
        base = ProfileSpec()
        derived = base.with_sample_period(500).without_vendor_driver()
        assert base.sample_period == 20_000 and base.vendor_driver is None
        assert derived.sample_period == 500 and derived.vendor_driver is False

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ValueError):
            ProfileSpec(analyses=("hotspots", "nonsense"))

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            ProfileSpec(sample_period=0)

    def test_to_dict_round_trips_through_json(self):
        spec = ProfileSpec().with_roofline()
        assert json.loads(json.dumps(spec.to_dict()))["analyses"][-1] == "roofline"


class TestRegistry:
    def test_known_names_present(self):
        names = set(registry)
        assert {"sqlite3-like", "matmul-tiled", "micro-calltree",
                "dot-product"} <= names

    def test_getitem_builds_workload_protocol_instances(self):
        for name in registry:
            workload = registry[name]
            assert isinstance(workload, Workload)
            assert workload.kind in ("synthetic", "kernel",
                                     "parallel-synthetic", "parallel-kernel")

    def test_create_forwards_parameters(self):
        small = registry.create("matmul-tiled", n=8)
        assert small.supports_roofline
        scaled = registry.create("micro-calltree", scale=3)
        assert scaled.tree.function("hot_leaf").ops_per_call == 2700

    def test_params_reflect_factory_signatures(self):
        assert "scale" in registry.params("sqlite3-like")
        assert "n" in registry.params("matmul-tiled")

    def test_unknown_name_raises_keyerror_with_choices(self):
        with pytest.raises(KeyError, match="sqlite3-like"):
            registry.create("no-such-workload")

    def test_describe_lists_everything(self):
        table = registry.describe()
        for name in registry:
            assert name in table

    def test_register_before_first_lookup_overrides_builtin(self):
        from repro.workloads.registry import WorkloadRegistry
        fresh = WorkloadRegistry()
        sentinel = SyntheticTraceWorkload(tree=micro_calltree_workload())
        fresh.register("sqlite3-like", lambda: sentinel, "mine")
        assert fresh["sqlite3-like"] is sentinel
        assert fresh.description("sqlite3-like") == "mine"
        # The builtins still filled in around it.
        assert "matmul-tiled" in fresh


class TestSessionSynthetic:
    def test_run_produces_hotspots_and_flames(self):
        session = Session("SpacemiT X60")
        run = session.run(registry["micro-calltree"], FAST_SPEC)
        assert run.platform == "SpacemiT X60"
        assert run.workload == "micro-calltree"
        assert run.recording is not None and run.recording.sample_count > 0
        assert run.hotspots is not None and run.hotspots.rows
        assert run.flame_cycles is not None
        assert run.flame_instructions is not None
        assert run.flame_cycles.find("hot_leaf") is not None
        assert not run.errors

    def test_platform_resolved_by_name_or_descriptor(self):
        by_name = Session("x60")
        by_descriptor = Session(spacemit_x60())
        assert by_name.descriptor.name == by_descriptor.descriptor.name

    def test_machine_is_lazy_and_cached(self):
        session = Session(spacemit_x60())
        assert not session._machines
        first = session.machine()
        assert session.machine() is first
        stock = session.machine(vendor_driver=False)
        assert stock is not first

    def test_counting_spec_runs_stat_only(self):
        run = Session(sifive_u74()).run("micro-calltree", ProfileSpec().counting())
        assert run.stat is not None
        assert run.stat.count(HwEvent.CYCLES) > 0
        assert run.recording is None and run.hotspots is None

    def test_sampling_on_u74_degrades_into_errors(self):
        run = Session(sifive_u74()).run("micro-calltree", FAST_SPEC)
        assert run.recording is None
        assert "sampling" in run.errors
        assert "overflow" in run.errors["sampling"]
        # ...and still exports.
        assert "errors" in run.to_dict()

    def test_seed_controls_determinism(self):
        session = Session(spacemit_x60())
        first = session.run("micro-calltree", FAST_SPEC.with_seed(7))
        second = Session(spacemit_x60()).run("micro-calltree", FAST_SPEC.with_seed(7))
        assert [r.function for r in first.hotspots.rows] == \
            [r.function for r in second.hotspots.rows]

    def test_report_and_exports(self):
        run = Session(spacemit_x60()).run("micro-calltree", FAST_SPEC)
        text = run.report()
        assert "micro-calltree on SpacemiT X60" in text
        assert "Hotspots" in text
        payload = json.loads(run.to_json())
        assert payload["platform"] == "SpacemiT X60"
        assert payload["hotspots"]["rows"]
        assert payload["flame_cycles"]["name"] == "all"
        svg = run.flamegraph_svg()
        assert svg.startswith("<svg") and "hot_leaf" in svg

    def test_flame_rejects_unknown_metric(self):
        run = Session(spacemit_x60()).run("micro-calltree", FAST_SPEC)
        with pytest.raises(ValueError, match="metric"):
            run.flame("Instructions")


class TestSessionKernels:
    def test_kernel_workload_profiles_under_pmu(self):
        """A compiled kernel goes through the same PMU path as trace replays."""
        session = Session(spacemit_x60())
        run = session.run(registry.create("dot-product", n=512),
                          ProfileSpec(sample_period=1_000))
        assert run.recording is not None and run.recording.sample_count > 0
        assert run.hotspots is not None
        assert run.hotspots.rows[0].function == "dot"
        assert run.flame_cycles.find("dot") is not None

    def test_kernel_roofline_from_same_run_type(self):
        run = Session(spacemit_x60()).run(
            registry.create("matmul-tiled", n=8),
            ProfileSpec(analyses=("roofline",)))
        assert isinstance(run, Run)
        assert run.roofline is not None
        assert run.roofline.kernel_gflops > 0
        counts = sum(l.fp_ops for l in run.roofline.loops)
        assert counts == 2 * 8 ** 3
        model = run.roofline_model()
        assert any(p.name == "matmul_tiled" for p in model.points)
        assert run.roofline_svg().startswith("<svg")

    def test_roofline_on_synthetic_workload_reports_error(self):
        run = Session(spacemit_x60()).run(
            "micro-calltree", ProfileSpec(analyses=("roofline",)))
        assert run.roofline is None
        assert "roofline" in run.errors

    def test_vectorizer_toggle_respected(self):
        spec = ProfileSpec(analyses=("roofline",))
        on = Session(spacemit_x60()).run(
            registry.create("dot-product", n=512), spec)
        off = Session(spacemit_x60()).run(
            registry.create("dot-product", n=512), spec.without_vectorizer())
        assert on.roofline.kernel_gflops > off.roofline.kernel_gflops

    def test_vendor_driver_spec_reaches_roofline_machines(self, monkeypatch):
        seen = []
        from repro.platforms import machine as machine_module
        original = machine_module.Machine.__init__

        def spy(self, descriptor, vendor_driver=True):
            seen.append(vendor_driver)
            original(self, descriptor, vendor_driver=vendor_driver)

        monkeypatch.setattr(machine_module.Machine, "__init__", spy)
        Session(spacemit_x60()).run(
            registry.create("dot-product", n=128),
            ProfileSpec(analyses=("roofline",)).without_vendor_driver())
        # Session machine + the two roofline phase machines, all stock.
        assert seen and all(flag is False for flag in seen)


class TestCompare:
    def test_compare_two_platforms_with_flame_diff(self):
        comparison = Session.compare(
            [spacemit_x60(), intel_i5_1135g7()], "micro-calltree", FAST_SPEC)
        assert isinstance(comparison, Comparison)
        assert [run.platform for run in comparison.runs] == \
            ["SpacemiT X60", "Intel Core i5-1135G7"]
        assert "Intel Core i5-1135G7" in comparison.flame_diffs
        diffs = {d.function for d in comparison.flame_diffs["Intel Core i5-1135G7"]}
        assert "hot_leaf" in diffs
        report = comparison.report()
        assert "flame-graph diff" in report
        assert "SpacemiT X60" in report and "Intel Core i5-1135G7" in report

    def test_compare_includes_unsampleable_platform_gracefully(self):
        comparison = Session.compare(
            ["SpacemiT X60", "SiFive U74"], "micro-calltree", FAST_SPEC)
        u74 = comparison.run_for("SiFive U74")
        assert u74 is not None and "sampling" in u74.errors
        assert "unavailable" in comparison.report()

    def test_compare_roofline_runs(self):
        comparison = Session.compare(
            [spacemit_x60(), intel_i5_1135g7()],
            registry.create("matmul-tiled", n=8),
            ProfileSpec(analyses=("roofline",)))
        gflops = [run.roofline.kernel_gflops for run in comparison.runs]
        assert all(g > 0 for g in gflops)
        # The paper's central comparison: x86 achieves much more than the X60.
        assert gflops[1] > gflops[0]
        payload = json.loads(comparison.to_json())
        assert payload["summary"][0]["gflops"] == pytest.approx(gflops[0], rel=1e-3)

    def test_compare_requires_platforms(self):
        with pytest.raises(ValueError):
            Session.compare([], "micro-calltree", FAST_SPEC)


class TestLegacyShim:
    def test_analysis_workflow_still_works(self):
        from repro.toolchain import AnalysisWorkflow
        workflow = AnalysisWorkflow(spacemit_x60())
        report = workflow.profile_synthetic(micro_calltree_workload(),
                                            sample_period=2_000)
        assert report.recording is not None
        assert report.hotspots is not None
        assert "Hotspots" in report.format()

    def test_analysis_workflow_roofline_kernel(self):
        from repro.toolchain import AnalysisWorkflow
        workflow = AnalysisWorkflow(spacemit_x60())
        result = workflow.roofline_kernel(DOT_PRODUCT_SOURCE, "dot",
                                          dot_args_builder(256))
        assert result.kernel_gflops > 0

    def test_custom_workload_objects_accepted_directly(self):
        workload = SyntheticTraceWorkload(tree=micro_calltree_workload(scale=2))
        run = Session(spacemit_x60()).run(workload, FAST_SPEC)
        assert run.workload == "micro-calltree"
        kernel = CompiledKernelWorkload(
            name="my-dot", source=DOT_PRODUCT_SOURCE, function="dot",
            args_builder=dot_args_builder(128))
        roofline_run = Session(spacemit_x60()).run(
            kernel, ProfileSpec(analyses=("roofline",)))
        assert roofline_run.roofline is not None


@pytest.mark.slow
class TestAcceptanceSqlite3:
    """The ISSUE acceptance path on the full sqlite3-shaped workload."""

    def test_one_api_profiles_both_workload_kinds(self):
        session = Session("SpacemiT X60")
        spec = ProfileSpec(sample_period=10_000)
        profile = session.run(registry["sqlite3-like"], spec)
        assert profile.hotspots.row_for("sqlite3VdbeExec") is not None
        assert profile.flame_cycles.find("patternCompare") is not None

        roofline = session.run(registry["matmul-tiled"],
                               ProfileSpec(analyses=()).with_roofline())
        assert type(roofline) is type(profile)
        assert roofline.roofline is not None
        assert roofline.roofline.kernel_gflops > 0

    def test_multi_platform_comparison_report(self):
        comparison = Session.compare(
            ["SpacemiT X60", "Intel Core i5-1135G7"], "sqlite3-like",
            ProfileSpec(sample_period=10_000))
        assert "Intel Core i5-1135G7" in comparison.flame_diffs
        diff_functions = {d.function
                          for d in comparison.flame_diffs["Intel Core i5-1135G7"]}
        assert "sqlite3VdbeExec" in diff_functions
        report = comparison.report()
        assert "flame-graph diff" in report
