"""The determinism linter: every rule, the suppression grammar, and the
repo-wide cleanliness gate CI runs (``repro lint`` over ``src/repro``)."""

import os
import textwrap

import pytest

from repro.analysis.lint import (
    RULES,
    iter_python_files,
    lint_paths,
    lint_source,
)

SRC_REPRO = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")


def _rules(source: str):
    return [v.rule for v in lint_source(textwrap.dedent(source))]


# -- each rule fires -------------------------------------------------------------------


def test_no_hash_fires_on_builtin_hash():
    assert _rules("key = hash((a, b))\n") == ["no-hash"]


def test_no_id_fires_on_builtin_id():
    assert _rules("key = id(node)\n") == ["no-id"]


def test_unordered_iter_fires_on_set_literal_comprehension_and_call():
    assert _rules("for x in {1, 2}:\n    pass\n") == ["unordered-iter"]
    assert _rules("out = [x for x in set(items)]\n") == ["unordered-iter"]
    assert _rules("out = {x: 1 for x in {y for y in items}}\n") == [
        "unordered-iter"]


def test_unordered_iter_quiet_when_sorted():
    assert _rules("for x in sorted({1, 2}):\n    pass\n") == []


def test_wall_clock_fires_through_import_aliases():
    assert _rules(
        "from time import perf_counter\nt0 = perf_counter()\n"
    ) == ["wall-clock"]
    assert _rules("import time as t\nnow = t.time()\n") == ["wall-clock"]
    assert _rules(
        "import datetime\nstamp = datetime.datetime.now()\n"
    ) == ["wall-clock"]


def test_unseeded_random_fires_on_module_functions_and_bare_random():
    assert _rules(
        "import random\nx = random.random()\n"
    ) == ["unseeded-random"]
    assert _rules(
        "from random import Random\nrng = Random()\n"
    ) == ["unseeded-random"]


def test_seeded_random_is_fine():
    assert _rules("from random import Random\nrng = Random(42)\n") == []


def test_shadowed_names_do_not_fire():
    # A local `hash`/`id` import or the user's own function is not the builtin.
    assert _rules(
        "from hashlib import sha256 as hash\ndigest = hash(b'x')\n"
    ) == []


# -- suppression grammar ---------------------------------------------------------------


def test_suppression_with_reason_silences_the_rule():
    assert _rules(
        "key = id(node)  # repro-lint: allow[no-id] -- per-process cache key\n"
    ) == []


def test_suppression_without_reason_is_itself_reported():
    assert _rules(
        "key = id(node)  # repro-lint: allow[no-id]\n"
    ) == ["lint-suppression"]


def test_suppression_for_a_different_rule_does_not_silence():
    assert _rules(
        "key = id(node)  # repro-lint: allow[no-hash] -- wrong rule\n"
    ) == ["no-id"]


def test_unknown_rule_in_allow_is_reported():
    rules = _rules(
        "x = 1  # repro-lint: allow[no-determinism] -- typo'd rule name\n"
    )
    assert rules == ["lint-suppression"]


def test_violation_format_and_dict_name_the_site():
    violations = lint_source("key = hash(x)\n", path="pkg/mod.py")
    assert len(violations) == 1
    v = violations[0]
    assert v.format().startswith("pkg/mod.py:1:7: no-hash:")
    assert v.to_dict()["rule"] == "no-hash"
    assert v.rule in RULES


def test_syntax_error_reports_instead_of_crashing():
    violations = lint_source("def broken(:\n", path="bad.py")
    assert violations and violations[0].rule == "lint-suppression"


# -- file walking + the repo gate ------------------------------------------------------


def test_iter_python_files_is_sorted_and_recursive(tmp_path):
    (tmp_path / "sub").mkdir()
    for name in ("b.py", "a.py", "sub/c.py", "sub/skip.txt"):
        (tmp_path / name).write_text("x = 1\n")
    found = list(iter_python_files([str(tmp_path)]))
    assert [os.path.relpath(p, tmp_path) for p in found] == [
        "a.py", "b.py", os.path.join("sub", "c.py")]


def test_fixture_with_hash_violation_fails_lint(tmp_path):
    bad = tmp_path / "nondeterministic.py"
    bad.write_text(textwrap.dedent("""\
        import random

        def sample(items):
            bucket = hash(tuple(items)) % 8
            return bucket, random.random()
    """))
    violations = lint_paths([str(tmp_path)])
    assert sorted(v.rule for v in violations) == ["no-hash", "unseeded-random"]


def test_repo_source_tree_lints_clean():
    """The gate CI enforces: zero violations over the repo's own package.
    Every deliberate hash()/id()/wall-clock site must carry a justified
    inline suppression."""
    violations = lint_paths([SRC_REPRO])
    assert violations == [], "\n".join(v.format() for v in violations)


def test_cli_lint_exits_nonzero_on_violations(tmp_path, capsys):
    from repro.toolchain.cli import main as cli_main

    bad = tmp_path / "bad.py"
    bad.write_text("key = hash(x)\n")
    code = cli_main(["lint", str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "no-hash" in out

    good = tmp_path / "good.py"
    good.write_text("key = (x, y)\n")
    assert cli_main(["lint", str(good)]) == 0
