"""Tests for the roofline model, the two-phase runner and the integrated workflow."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.platforms import Machine, intel_i5_1135g7, sifive_u74, spacemit_x60
from repro.roofline import (
    MachineRoofs,
    RooflineModel,
    RooflinePoint,
    RooflineRunner,
    measure_roofs,
    render_ascii_roofline,
    render_svg_roofline,
    theoretical_roofs,
)
from repro.toolchain.workflow import AnalysisWorkflow
from repro.workloads import (
    DOT_PRODUCT_SOURCE,
    dot_args_builder,
    MATMUL_TILED_SOURCE,
    matmul_args_builder,
)
from repro.workloads.kernels import analytic_matmul_counts
from repro.workloads.sqlite3_like import sqlite3_like_workload
from repro.workloads.synthetic import InstructionMix, SyntheticFunction, SyntheticWorkload


class TestRoofs:
    def test_x60_theoretical_roofs_match_paper_arithmetic(self):
        roofs = theoretical_roofs(spacemit_x60())
        # 2 IPC x 8 SP lanes x 1.6 GHz = 25.6 GFLOP/s.
        assert roofs.peak_gflops == pytest.approx(25.6)
        # 3.16 bytes/cycle x 1.6 GHz = 5.06 GB/s (the paper rounds to ~4.7).
        assert roofs.dram_bandwidth == pytest.approx(5.056, rel=1e-3)
        assert roofs.ridge_point() == pytest.approx(25.6 / 5.056, rel=1e-3)

    def test_attainable_is_min_of_roofs(self):
        roofs = MachineRoofs("toy", peak_gflops=10.0, bandwidth_gbps={"DRAM": 2.0})
        assert roofs.attainable_gflops(1.0) == 2.0
        assert roofs.attainable_gflops(100.0) == 10.0
        assert roofs.attainable_gflops(0.0) == 0.0

    def test_measured_roofs_do_not_exceed_theoretical_by_much(self):
        descriptor = spacemit_x60()
        measured = measure_roofs(descriptor, elements=2048)
        theoretical = theoretical_roofs(descriptor)
        assert measured.peak_gflops <= theoretical.peak_gflops * 1.2
        assert measured.dram_bandwidth <= theoretical.dram_bandwidth * 1.5
        assert measured.peak_gflops > 0
        assert measured.dram_bandwidth > 0

    @given(st.floats(min_value=0.001, max_value=1000.0))
    @settings(max_examples=50, deadline=None)
    def test_attainable_monotone_in_intensity(self, intensity):
        roofs = theoretical_roofs(spacemit_x60())
        lower = roofs.attainable_gflops(intensity)
        higher = roofs.attainable_gflops(intensity * 2)
        assert higher >= lower - 1e-9
        assert lower <= roofs.peak_gflops + 1e-9


class TestRooflineModel:
    def test_bound_classification(self):
        roofs = MachineRoofs("toy", peak_gflops=10.0, bandwidth_gbps={"DRAM": 5.0})
        model = RooflineModel(roofs)
        memory_bound = RooflinePoint("low-AI", arithmetic_intensity=0.5, gflops=1.0)
        compute_bound = RooflinePoint("high-AI", arithmetic_intensity=50.0, gflops=8.0)
        model.add_point(memory_bound)
        model.add_point(compute_bound)
        assert model.bound_of(memory_bound) == "memory-bound"
        assert model.bound_of(compute_bound) == "compute-bound"
        assert model.efficiency_of(memory_bound) == pytest.approx(1.0 / 2.5)
        assert "memory-bound" in model.summary()

    def test_plots_render(self):
        roofs = theoretical_roofs(spacemit_x60())
        model = RooflineModel(roofs)
        model.add_point(RooflinePoint("kernel", 0.25, 1.58))
        ascii_plot = render_ascii_roofline(model)
        assert "GFLOP/s" in ascii_plot and "kernel" in ascii_plot
        svg = render_svg_roofline(model)
        assert svg.startswith("<svg") and "kernel" in svg


class TestTwoPhaseRunner:
    def test_dot_product_counts_and_overhead(self):
        descriptor = spacemit_x60()
        runner = RooflineRunner(descriptor)
        n = 256
        result = runner.run_source(DOT_PRODUCT_SOURCE, "dot", dot_args_builder(n))
        assert len(result.loops) == 1
        loop = result.loops[0]
        assert loop.fp_ops == 2 * n
        assert loop.loaded_bytes == 8 * n           # two f32 loads per iteration
        assert loop.arithmetic_intensity == pytest.approx(0.25)
        assert loop.baseline_cycles > 0
        # Instrumentation adds overhead; two-phase keeps it out of the timing.
        assert loop.instrumentation_overhead > 1.0
        assert result.kernel_gflops > 0

    def test_matmul_fp_ops_match_analytic_count(self):
        descriptor = spacemit_x60()
        runner = RooflineRunner(descriptor)
        n = 12
        result = runner.run_source(MATMUL_TILED_SOURCE, "matmul_tiled",
                                   matmul_args_builder(n))
        total_fp = sum(loop.fp_ops for loop in result.loops)
        assert total_fp == analytic_matmul_counts(n)["fp_ops"]
        point = result.point_for_kernel()
        assert point.gflops == pytest.approx(result.kernel_gflops)
        assert 0 < point.arithmetic_intensity < 1.0

    def test_kernel_stays_below_roofs(self):
        descriptor = spacemit_x60()
        runner = RooflineRunner(descriptor)
        result = runner.run_source(DOT_PRODUCT_SOURCE, "dot", dot_args_builder(128))
        model = result.model()
        for point in model.points:
            attainable = model.attainable(point.arithmetic_intensity)
            assert point.gflops <= attainable * 1.05

    def test_vectorization_off_is_slower_on_vector_platform(self):
        descriptor = spacemit_x60()
        n = 256
        vectorized = RooflineRunner(descriptor, enable_vectorizer=True).run_source(
            DOT_PRODUCT_SOURCE, "dot", dot_args_builder(n))
        scalar = RooflineRunner(descriptor, enable_vectorizer=False).run_source(
            DOT_PRODUCT_SOURCE, "dot", dot_args_builder(n))
        assert vectorized.kernel_gflops > scalar.kernel_gflops
        # Operation counts are identical either way (IR-level counting).
        assert (sum(l.fp_ops for l in vectorized.loops)
                == sum(l.fp_ops for l in scalar.loops))

    def test_scalar_only_platform_ignores_vector_annotations(self):
        descriptor = sifive_u74()
        runner = RooflineRunner(descriptor)
        result = runner.run_source(DOT_PRODUCT_SOURCE, "dot", dot_args_builder(64))
        assert result.kernel_gflops > 0


class TestWorkflow:
    def test_full_report_contains_all_sections(self):
        workload = SyntheticWorkload(name="mini", entry="main")
        mix = InstructionMix(working_set_bytes=4096, locality=0.9)
        workload.add(SyntheticFunction("kernel", 4000, mix))
        workload.add(SyntheticFunction("main", 200, mix, callees=[("kernel", 1)]))

        workflow = AnalysisWorkflow(spacemit_x60())
        report = workflow.profile_synthetic(workload, sample_period=2000)
        report.roofline = workflow.roofline_kernel(
            DOT_PRODUCT_SOURCE, "dot", dot_args_builder(64))
        text = report.format()
        assert "miniperf on SpacemiT X60" in text
        assert "Hotspots" in text
        assert "Roofline" in text
        assert report.flame_cycles.find("kernel") is not None

    def test_workflow_on_platform_without_sampling_raises(self):
        from repro.miniperf.groups import SamplingNotSupportedError
        workflow = AnalysisWorkflow(sifive_u74())
        workload = sqlite3_like_workload()
        with pytest.raises(SamplingNotSupportedError):
            workflow.profile_synthetic(workload, sample_period=5000)
