"""The fault-injection subsystem: spec parsing, determinism, fault points.

The contract under test, end to end: an injected fault may cost time (a
retry, a re-execution, a cache miss) but can never change served bytes --
every corruption lands *under* the disk store's integrity envelope, so the
defect is detected and the payload recomputed.
"""

import json
import os

import pytest

from repro import faults
from repro.api.executor import RunRequest
from repro.api.journal import SweepJournal, plan_digest
from repro.api.spec import ProfileSpec
from repro.api.sweep import build_plan, canonical_cell, sweep
from repro.cache.keys import RESULT_KIND, cache_key
from repro.cache.store import DiskCache
from repro.faults import FaultPlan, FaultSpec, InjectedFault
from repro.workloads import registry


@pytest.fixture(autouse=True)
def _clean_injector():
    """Every test starts and ends with no plan installed."""
    faults.install(None)
    yield
    faults.install(None)
    faults.reset()


# -- spec parsing -------------------------------------------------------------------------


def test_parse_multi_clause_spec():
    plan = FaultPlan.parse(
        "store.read_corrupt:rate=0.5:seed=7;pool.worker_crash:every=3")
    assert plan.spec_for("store.read_corrupt") == FaultSpec(
        point="store.read_corrupt", rate=0.5, seed=7)
    assert plan.spec_for("pool.worker_crash") == FaultSpec(
        point="pool.worker_crash", every=3)
    assert plan.spec_for("daemon.conn_drop") is None
    assert bool(plan)
    assert not bool(FaultPlan.parse(""))


@pytest.mark.parametrize("spec, match", [
    ("no.such_point", "unknown fault point"),
    ("store.read_corrupt:rate=0.5:every=2", "both rate= and every="),
    ("store.read_corrupt:rate=1.5", r"in \(0, 1\]"),
    ("store.read_corrupt:rate=banana", "malformed fault setting"),
    ("store.read_corrupt:every=0", "must be >= 1"),
    ("store.read_corrupt:times=0", "must be >= 1"),
    ("daemon.stall_response:ms=-1", "must be >= 0"),
    ("store.read_corrupt:bogus=1", "bad fault setting"),
    ("store.read_corrupt:rate=0.5:rate=0.5", "duplicate fault setting"),
    ("store.read_corrupt;store.read_corrupt", "appears twice"),
])
def test_parse_rejects_malformed_specs(spec, match):
    with pytest.raises(ValueError, match=match):
        FaultPlan.parse(spec)


def test_malformed_env_spec_raises_at_first_evaluation(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "definitely.not_a_point")
    faults.reset()
    with pytest.raises(ValueError, match="unknown fault point"):
        faults.fires("store.read_corrupt")


def test_env_spec_is_parsed_lazily_and_cached(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "compiler.compile_fail:every=2")
    faults.reset()
    injector = faults.active()
    assert injector is not None
    assert injector.spec_for("compiler.compile_fail").every == 2
    # Cached: changing the env without reset() does not re-parse.
    monkeypatch.setenv("REPRO_FAULTS", "garbage")
    assert faults.active() is injector


# -- decision determinism -----------------------------------------------------------------


def test_rate_decisions_are_a_pure_function_of_the_clause():
    decisions = []
    for _attempt in range(2):
        injector = faults.install("daemon.conn_drop:rate=0.3:seed=11")
        decisions.append([injector.fire("daemon.conn_drop")
                          for _ in range(64)])
    assert decisions[0] == decisions[1]
    assert any(decisions[0]) and not all(decisions[0])


def test_every_nth_fires_periodically():
    injector = faults.install("pool.slow_worker:every=3")
    fired = [injector.fire("pool.slow_worker") for _ in range(9)]
    assert fired == [False, False, True] * 3


def test_times_caps_total_injections():
    injector = faults.install("daemon.conn_drop:times=2")
    fired = [injector.fire("daemon.conn_drop") for _ in range(5)]
    assert fired == [True, True, False, False, False]
    assert injector.stats()["daemon.conn_drop"]["injections"] == 2


def test_corruption_is_deterministic_per_seed():
    data = bytes(range(64))
    first = faults.install(
        "store.read_corrupt:seed=5").corrupt_bytes("store.read_corrupt", data)
    second = faults.install(
        "store.read_corrupt:seed=5").corrupt_bytes("store.read_corrupt", data)
    other = faults.install(
        "store.read_corrupt:seed=6").corrupt_bytes("store.read_corrupt", data)
    assert first == second
    assert first != data
    assert sum(bin(a ^ b).count("1")
               for a, b in zip(first, data)) == 1, "exactly one bit flips"
    assert other != first


def test_injections_are_counted_in_telemetry():
    from repro import telemetry
    counter = telemetry.REGISTRY.counter(
        "repro_faults_injected_total",
        "Faults injected by repro.faults, labelled by fault point.")
    before = counter.value(point="daemon.conn_drop")
    faults.install("daemon.conn_drop")
    assert faults.fires("daemon.conn_drop")
    assert counter.value(point="daemon.conn_drop") == before + 1


# -- store fault points: corrupted entries are misses, never wrong bytes ------------------


def _fresh_store(tmp_path, name):
    return DiskCache(str(tmp_path / name))


def test_write_corrupt_entry_is_detected_on_read(tmp_path):
    store = _fresh_store(tmp_path, "wc")
    faults.install("store.write_corrupt")
    assert store.put("result", "k" * 64, b"payload-bytes")
    faults.install(None)
    assert store.get("result", "k" * 64) is None
    assert store.integrity_failures == 1
    # A clean re-fill serves the true bytes again.
    assert store.put("result", "k" * 64, b"payload-bytes")
    assert store.get("result", "k" * 64) == b"payload-bytes"


def test_partial_write_is_detected_on_read(tmp_path):
    store = _fresh_store(tmp_path, "pw")
    faults.install("store.partial_write")
    assert store.put("result", "t" * 64, b"payload-bytes" * 16)
    faults.install(None)
    assert store.get("result", "t" * 64) is None
    assert store.integrity_failures == 1


def test_read_corrupt_turns_hits_into_misses_never_wrong_bytes(tmp_path):
    store = _fresh_store(tmp_path, "rc")
    assert store.put("result", "r" * 64, b"the-true-bytes")
    faults.install("store.read_corrupt:rate=0.5:seed=3")
    served = []
    for _ in range(32):
        body = store.get("result", "r" * 64)
        if body is None:
            # The corrupted read removed the entry; refill (the sweep
            # engine's re-execute-and-refill, in miniature; the plan has
            # no write-side faults, so the fill lands clean).
            store.put("result", "r" * 64, b"the-true-bytes")
        else:
            served.append(body)
    assert served, "some reads must survive a 50% corruption rate"
    assert all(body == b"the-true-bytes" for body in served)
    assert store.integrity_failures > 0


# -- compiler fault point -----------------------------------------------------------------


def test_compile_fail_raises_injected_fault(tmp_path, monkeypatch):
    from repro.compiler.cache import clear_memory_cache, compile_source_cached
    from repro.platforms import platform_by_name
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cc"))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    source = "long f(long a) { return a + 1; }\n"
    descriptor = platform_by_name("x60")
    clear_memory_cache()
    faults.install("compiler.compile_fail")
    with pytest.raises(InjectedFault, match="compiler.compile_fail"):
        compile_source_cached(source, "faulty.c", descriptor, False)
    # The fault fires only on a true compile: once compiled cleanly, the
    # memoized module serves without re-evaluating the point.
    faults.install(None)
    module = compile_source_cached(source, "faulty.c", descriptor, False)
    faults.install("compiler.compile_fail")
    assert compile_source_cached(source, "faulty.c", descriptor, False) \
        is module


# -- sweep robustness: per-cell isolation, journal, resume --------------------------------


class _BoomWorkload:
    """A workload whose executable raises (per-cell isolation tests)."""

    name = "boom-on-run"
    kind = "synthetic"
    description = "raises mid-run (fault-isolation tests)"

    @property
    def executable(self):
        raise RuntimeError("boom: injected workload failure")


@pytest.fixture()
def boom_workload():
    registry.register("boom-on-run", _BoomWorkload)
    yield
    registry._factories.pop("boom-on-run", None)
    registry._descriptions.pop("boom-on-run", None)


def _cell_key(platform, workload):
    request = build_plan([platform], [workload])[0]
    return cache_key("run", canonical_cell(request))


def test_sweep_isolates_failing_cells(tmp_path, boom_workload):
    store = DiskCache(str(tmp_path / "iso"))
    plan = (build_plan(["x60"], ["memset"])
            + build_plan(["x60"], ["boom-on-run"]))
    result = sweep(plan, workers=0, store=store)
    assert [outcome.status for outcome in result.outcomes] == [
        "executed", "error"]
    failure = result.outcomes[1].failure
    assert failure["type"] == "RuntimeError"
    assert "boom" in failure["message"]
    assert failure["cache_key"] == result.outcomes[1].cell.key
    # The journal survives (the sweep did not fully succeed) and records
    # the completed cell as complete, the failed one as an error.
    journal = SweepJournal.for_plan(
        store.root, [outcome.cell.key for outcome in result.outcomes])
    assert journal.complete(result.outcomes[0].cell.key)
    assert journal.statuses[result.outcomes[1].cell.key] == "error"


def test_sweep_fail_fast_when_isolation_is_off(tmp_path, boom_workload):
    plan = build_plan(["x60"], ["boom-on-run"])
    with pytest.raises(RuntimeError, match="boom"):
        sweep(plan, workers=0, store=DiskCache(str(tmp_path / "ff")),
              isolate_errors=False)


def test_successful_sweep_removes_its_journal(tmp_path):
    store = DiskCache(str(tmp_path / "ok"))
    plan = build_plan(["x60"], ["memset"])
    result = sweep(plan, workers=0, store=store)
    assert result.counts()["error"] == 0
    digest = plan_digest([outcome.cell.key for outcome in result.outcomes])
    assert not os.path.exists(
        os.path.join(store.root, "sweeps", f"{digest}.jsonl"))


def test_resume_skips_journaled_cells_and_retries_errors(tmp_path):
    store = DiskCache(str(tmp_path / "resume"))
    plan = build_plan(["x60"], ["memset", "dot-product"])
    # Fill the store for the first cell the way an interrupted sweep would
    # have: execute it alone, then hand-write the 2-cell plan's journal.
    first_only = sweep([plan[0]], workers=0, store=DiskCache(store.root))
    keys = [cache_key("run", canonical_cell(request)) for request in plan]
    journal = SweepJournal.for_plan(store.root, keys)
    journal.record(keys[0], "executed")
    journal.record(keys[1], "error",
                   error={"type": "WorkerCrash", "message": "killed"})

    result = sweep(plan, workers=0, store=store, resume=True)
    assert [outcome.status for outcome in result.outcomes] == [
        "resumed", "executed"]
    assert result.outcomes[0].body() == first_only.outcomes[0].body()
    # The resumed sweep succeeded fully, so the journal is gone.
    assert not os.path.exists(journal.path)


def test_resume_serves_journaled_cells_even_under_bypass(tmp_path):
    store = DiskCache(str(tmp_path / "rb"))
    plan = build_plan(["x60"], ["memset"])
    sweep(plan, workers=0, store=DiskCache(store.root))
    keys = [cache_key("run", canonical_cell(request)) for request in plan]
    journal = SweepJournal.for_plan(store.root, keys)
    journal.record(keys[0], "executed")
    result = sweep(plan, workers=0, store=store, resume=True,
                   bypass_cache=True)
    assert result.outcomes[0].status == "resumed"


def test_resume_requires_a_store():
    with pytest.raises(ValueError, match="resume"):
        sweep(build_plan(["x60"], ["memset"]), workers=0, store=None,
              resume=True)


def test_journal_ignores_a_different_plans_records(tmp_path):
    store = DiskCache(str(tmp_path / "dj"))
    keys_a = ["a" * 64, "b" * 64]
    journal_a = SweepJournal.for_plan(store.root, keys_a)
    journal_a.record(keys_a[0], "executed")
    # A different plan gets a different digest -> different journal file,
    # so its completions can never leak across plans.
    journal_b = SweepJournal.for_plan(store.root, ["c" * 64])
    assert journal_b.path != journal_a.path
    assert not journal_b.complete(keys_a[0])
    # Reloading the same plan sees the same records.
    again = SweepJournal.for_plan(store.root, keys_a)
    assert again.complete(keys_a[0])


def test_journal_file_is_valid_jsonl(tmp_path):
    store = DiskCache(str(tmp_path / "jf"))
    keys = ["d" * 64, "e" * 64]
    journal = SweepJournal.for_plan(store.root, keys)
    journal.record(keys[0], "executed")
    journal.record(keys[1], "hit")
    with open(journal.path, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle.read().splitlines()]
    assert lines[0]["digest"] == plan_digest(keys)
    assert {record["key"]: record["status"]
            for record in lines[1:]} == {keys[0]: "executed",
                                         keys[1]: "hit"}


# -- executor fault points ----------------------------------------------------------------


def test_slow_worker_fault_delays_but_preserves_results():
    faults.install("executor.slow_worker:ms=1")
    request = RunRequest(platform="SpacemiT X60", workload="memset",
                         params={"n": 64},
                         spec=ProfileSpec(analyses=("stat",)))
    from repro.api.executor import execute_request
    slow = execute_request(request)
    faults.install(None)
    fast = execute_request(request)
    assert slow.deterministic_dict() == fast.deterministic_dict()


def test_worker_crash_point_is_inert_outside_worker_processes():
    # In the parent process the executor crash point must never fire --
    # otherwise the test process itself would die.  That must hold even
    # when a warmup helper ran in-process and left _IN_WORKER_PROCESS set
    # (regression: an earlier suite file doing exactly that armed this
    # test to os._exit the whole pytest process).
    from repro.api import executor
    faults.install("executor.worker_crash")
    request = RunRequest(platform="SpacemiT X60", workload="memset",
                         params={"n": 64},
                         spec=ProfileSpec(analyses=("stat",)))
    saved = executor._IN_WORKER_PROCESS
    executor._IN_WORKER_PROCESS = True
    try:
        run = executor.execute_request(request)
    finally:
        executor._IN_WORKER_PROCESS = saved
    assert run.deterministic_dict()["stat"]["counts"]
