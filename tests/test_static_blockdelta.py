"""Differential suite: static block-delta certification vs the engine.

``certify_module`` decides block-delta eligibility at compile time; the
engine re-derives the same property at predecode time and *raises* if the
two ever disagree (``ExecutionEngine._cross_check_static_delta``).  So
every run below is a differential test by construction:

* the registry sweep runs all 11 workloads on all 4 modelled platforms
  with the cross-check armed -- a divergence anywhere fails the run;
* direct-engine tests additionally assert the positive direction (every
  cached delta's block carries an ``eligible`` verdict, verdicts exist for
  every block of every executed function);
* property tests throw ~20 seeded random loop/branch kernels at the pair
  -- shapes no registry workload exercises.
"""

import random

import pytest

from repro.analysis.blockdelta import verdicts_for
from repro.api import ProfileSpec, Session
from repro.compiler.cache import compile_source_cached
from repro.compiler.targets import target_for_platform
from repro.platforms import Machine, all_platforms, platform_by_name, spacemit_x60
from repro.vm import ExecutionEngine, Memory
from repro.workloads import registry

PLATFORMS = [descriptor.name for descriptor in all_platforms()]

SMALL_PARAMS = {
    "sqlite3-like": {"scale": 1},
    "micro-calltree": {"scale": 1},
    "forkjoin-calltree": {"scale": 1},
    "matmul-tiled": {"n": 12},
    "matmul-naive": {"n": 12},
    "matmul-parallel": {"n": 12},
    "dot-product": {"n": 256},
    "stream-triad": {"n": 256},
    "stream-triad-mt": {"n": 256},
    "stencil3": {"n": 256},
    "memset": {"n": 256},
}

COUNTING_SPEC = ProfileSpec().counting()


# -- registry sweep (cross-check armed inside the engine) -------------------------------


@pytest.mark.parametrize("platform", PLATFORMS)
def test_all_registry_workloads_agree_with_engine(platform):
    """11 workloads x 4 platforms under the armed cross-check: any static
    verdict diverging from the runtime classifier raises mid-run."""
    session = Session(platform)
    for name in sorted(registry):
        workload = registry.create(name, **SMALL_PARAMS.get(name, {}))
        run = session.run(workload, COUNTING_SPEC)
        assert run.stat is not None and not run.errors, name


# -- direct engine: both directions, explicitly -----------------------------------------


def _run_engine(source: str, function: str, args_builder,
                platform: str = "SpacemiT X60"):
    descriptor = platform_by_name(platform)
    module = compile_source_cached(source, "static_delta.c", descriptor, True)
    target = target_for_platform(descriptor)
    machine = Machine(descriptor)
    task = machine.create_task("static-delta")
    memory = Memory()
    engine = ExecutionEngine(module, machine, target, task=task,
                             memory=memory, block_delta=True)
    result = engine.run(function, list(args_builder(memory)))
    return result, machine, module, target


TRIAD = """
void triad(float* a, float* b, float* c, float scalar, long n) {
  for (long i = 0; i < n; i++) {
    a[i] = b[i] + scalar * c[i];
  }
}
"""


def test_cached_deltas_all_have_eligible_verdicts():
    n = 64

    def args(memory):
        a = memory.alloc_float_array([0.0] * n)
        b = memory.alloc_float_array([1.0] * n)
        c = memory.alloc_float_array([2.0] * n)
        return [a, b, c, 3.0, n]

    _, machine, module, target = _run_engine(TRIAD, "triad", args)
    assert machine.block_deltas, "triad retired no block deltas"
    for block in machine.block_deltas:
        verdicts = verdicts_for(block.parent, target)
        assert verdicts is not None
        assert verdicts[block.name].eligible, block.name
    # Every defined function is certified, with one verdict per block.
    for function in module.defined_functions():
        verdicts = verdicts_for(function, target)
        assert verdicts is not None
        assert sorted(verdicts) == sorted(b.name for b in function.blocks)


def test_triad_verdict_reasons_name_the_disqualifier():
    descriptor = spacemit_x60()
    module = compile_source_cached(TRIAD, "static_delta.c", descriptor, True)
    target = target_for_platform(descriptor)
    verdicts = verdicts_for(module.get_function("triad"), target)
    reasons = {verdicts[name].reason for name in verdicts}
    # The loop body touches memory, the loop header branches conditionally,
    # and at least one block (entry or exit) is pure.
    assert "memory" in reasons or "vector" in reasons
    assert "conditional-branch" in reasons
    assert "pure" in reasons


def test_divergent_verdict_raises_at_runtime():
    """Corrupt a stored verdict and the engine's cross-check must name the
    block -- proof the differential is actually armed."""
    from repro.analysis.blockdelta import STATIC_DELTA_KEY, BlockVerdict

    descriptor = spacemit_x60()
    source = TRIAD.replace("triad", "triad_poison")
    module = compile_source_cached(source, "static_delta.c", descriptor, True)
    target = target_for_platform(descriptor)
    function = module.get_function("triad_poison")
    verdicts = dict(verdicts_for(function, target))
    flipped = {name: BlockVerdict(not v.eligible, "poisoned")
               for name, v in verdicts.items()}
    per_target = function.metadata[STATIC_DELTA_KEY]
    from repro.analysis.blockdelta import target_key
    original = per_target[target_key(target)]
    per_target[target_key(target)] = flipped
    try:
        machine = Machine(descriptor)
        task = machine.create_task("poison")
        engine = ExecutionEngine(module, machine, target, task=task,
                                 memory=Memory(), block_delta=True)
        memory = engine.memory
        n = 8
        a = memory.alloc_float_array([0.0] * n)
        b = memory.alloc_float_array([1.0] * n)
        c = memory.alloc_float_array([2.0] * n)
        with pytest.raises(RuntimeError, match="diverges"):
            engine.run("triad_poison", [a, b, c, 3.0, n])
    finally:
        per_target[target_key(target)] = original


# -- property tests: seeded random loop/branch kernels ----------------------------------


def _random_loop_source(seed: int) -> str:
    """A random scalar kernel: a counted loop whose body mixes float/int
    arithmetic with optional if-branches -- blocks of every eligibility
    class (pure jumps, conditional branches, promoted-slot arithmetic)."""
    rng = random.Random(seed)
    lines = []
    for index in range(rng.randint(2, 6)):
        op = rng.choice(["+", "-", "*"])
        lines.append(f"    acc = acc {op} t;")
        roll = rng.random()
        if roll < 0.4:
            bound = rng.choice(["4.0f", "64.0f", "1024.0f"])
            fix = rng.choice(["+", "-"])
            lines.append(f"    if (acc > {bound}) {{ acc = acc {fix} b; }}")
        elif roll < 0.6:
            lines.append(f"    k = k * 3 + {rng.randint(1, 5)};")
        if rng.random() < 0.3:
            lines.append("    t = t * 0.5f + 1.0f;")
    body = "\n".join(lines)
    return (
        "float kernel(float a, float b, long n) {\n"
        "  float acc = a;\n"
        "  float t = b;\n"
        "  long k = 1;\n"
        "  for (long i = 0; i < n; i++) {\n"
        f"{body}\n"
        "  }\n"
        "  return acc + t + (float)k;\n"
        "}\n"
    )


def _check_property(seed: int, platform: str):
    source = _random_loop_source(seed)
    # The run itself is the differential: the cross-check raises on any
    # static/runtime disagreement over every decoded block.
    _, machine, module, target = _run_engine(source, "kernel",
                                             lambda memory: [1.5, -0.75, 37],
                                             platform)
    function = module.get_function("kernel")
    verdicts = verdicts_for(function, target)
    assert verdicts is not None
    assert sorted(verdicts) == sorted(b.name for b in function.blocks)
    for block in machine.block_deltas:
        if block.parent is function:
            assert verdicts[block.name].eligible, (seed, block.name)


@pytest.mark.parametrize("seed", range(20))
def test_random_kernels_agree_on_x60(seed):
    _check_property(seed, "SpacemiT X60")


@pytest.mark.parametrize("platform",
                         [p for p in PLATFORMS if p != "SpacemiT X60"])
@pytest.mark.parametrize("seed", range(20, 26))
def test_random_kernels_agree_cross_platform(seed, platform):
    _check_property(seed, platform)
