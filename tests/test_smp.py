"""Tests for the SMP subsystem: multi-hart machines, the deterministic
scheduler, system-wide perf attachment, and SMP runs through the session API
and the CLI."""

import json

import pytest

from repro.api import ProfileSpec, Session
from repro.cpu.events import HwEvent
from repro.isa.machine_ops import MachineOp, OpClass
from repro.kernel.perf_event import PerfEventAttr, ReadFormat
from repro.platforms import sifive_u74, spacemit_x60, thead_c910
from repro.smp import (
    MemoryController,
    MultiHartMachine,
    RoundRobinScheduler,
    Thread,
    aggregate_roofline,
    smp_record,
    smp_stat,
)
from repro.cpu.cache import MemoryConfig
from repro.toolchain.cli import main as cli_main
from repro.workloads import registry
from repro.workloads.parallel import ParallelWorkload

FAST_SPEC = ProfileSpec(sample_period=2_000)


def alu_loop_body(ops: int, quanta: int = 3, pc_base: int = 0x1000):
    """A tiny thread body: `quanta` bursts of ALU ops under one stack frame."""

    def body(machine, task):
        task.push_frame("worker")
        for _ in range(quanta):
            for slot in range(ops):
                machine.execute(
                    MachineOp(OpClass.INT_ALU, pc=pc_base + 4 * slot), task)
            yield
        task.pop_frame()

    return body


def load_loop_body(ops: int, stride: int = 64, base: int = 0x100000):
    def body(machine, task):
        task.push_frame("streamer")
        for chunk in range(3):
            for slot in range(ops):
                machine.execute(
                    MachineOp(OpClass.LOAD, size_bytes=8,
                              address=base + stride * slot, pc=0x2000 + 4 * slot),
                    task)
            yield
        task.pop_frame()

    return body


class TestMemoryController:
    def test_single_hart_pays_base_latency(self):
        controller = MemoryController(MemoryConfig(latency_cycles=100))
        latencies = [controller.access_latency(0) for _ in range(50)]
        assert set(latencies) == {100}
        assert controller.contended_accesses == 0

    def test_competing_harts_stretch_latency(self):
        controller = MemoryController(MemoryConfig(latency_cycles=100),
                                      contention_per_hart=0.5)
        controller.access_latency(0)
        interleaved = [controller.access_latency(hart) for hart in (1, 0, 1, 0)]
        assert all(latency == 150 for latency in interleaved)
        assert controller.contended_accesses == 4

    def test_contention_is_windowed(self):
        controller = MemoryController(MemoryConfig(latency_cycles=100),
                                      window=4, contention_per_hart=0.5)
        controller.access_latency(1)
        # Hart 1 ages out of the 4-entry window after 4 solo accesses.
        latencies = [controller.access_latency(0) for _ in range(6)]
        assert latencies[-1] == 100


class TestMultiHartMachine:
    def test_rejects_more_harts_than_the_board_has(self):
        with pytest.raises(ValueError, match="harts"):
            MultiHartMachine(sifive_u74(), cpus=16)
        with pytest.raises(ValueError, match="cpus"):
            MultiHartMachine(spacemit_x60(), cpus=0)

    def test_harts_are_indexed_through_the_whole_stack(self):
        machine = MultiHartMachine(spacemit_x60(), cpus=3)
        for index, hart in enumerate(machine.harts):
            assert hart.hart_id == index
            assert hart.perf.cpu == index
            assert hart.sbi.hart_id == index
            assert hart.driver.hart_id == index

    def test_llc_is_shared_and_l1_is_private(self):
        machine = MultiHartMachine(spacemit_x60(), cpus=2)
        h0 = machine.hart(0).hierarchy
        h1 = machine.hart(1).hierarchy
        assert h0.shared_levels[0] is h1.shared_levels[0]
        assert h0.private_levels[0] is not h1.private_levels[0]
        # Hart 0 faults a line in; hart 1 then hits it in the shared LLC
        # (no DRAM access) but misses its own private L1.
        machine.hart(0).execute(MachineOp(OpClass.LOAD, size_bytes=8,
                                          address=0x9000, pc=0x100))
        before = machine.memory_system.controller.accesses
        result = h1.access(0x9000, 8, is_store=False)
        assert result.hit_level == "L2"
        assert result.l1_miss and not result.llc_miss
        assert machine.memory_system.controller.accesses == before

    def test_aggregate_metrics(self):
        machine = MultiHartMachine(thead_c910(), cpus=2)
        smp_stat(machine, [("a", alu_loop_body(200)), ("b", alu_loop_body(100))])
        assert machine.total_instructions == sum(h.instructions
                                                 for h in machine.harts)
        assert machine.wall_cycles == max(h.cycles for h in machine.harts)
        assert machine.aggregate_ipc > 0
        stats = machine.stats()
        assert stats["cpus"] == 2 and len(stats["harts"]) == 2


class TestScheduler:
    def test_round_robin_pins_and_time_slices(self):
        machine = MultiHartMachine(spacemit_x60(), cpus=2)
        threads = [Thread(f"t{i}", alu_loop_body(10)) for i in range(4)]
        trace = RoundRobinScheduler(machine).run(threads)
        assert trace.threads_per_hart == {0: ["t0", "t2"], 1: ["t1", "t3"]}
        # Each hart alternates its two threads quantum by quantum.
        assert trace.quanta_on(0)[:4] == ["t0", "t2", "t0", "t2"]
        assert all(thread.finished for thread in threads)

    def test_schedule_is_deterministic(self):
        def run_once():
            machine = MultiHartMachine(spacemit_x60(), cpus=3)
            threads = [Thread(f"t{i}", alu_loop_body(20 + i)) for i in range(5)]
            return RoundRobinScheduler(machine).run(threads).quanta

        assert run_once() == run_once()

    def test_zero_threads_is_a_clean_value_error(self):
        machine = MultiHartMachine(spacemit_x60(), cpus=2)
        with pytest.raises(ValueError, match="at least one thread"):
            RoundRobinScheduler(machine).run([])

    def test_out_of_range_pin_is_a_clean_value_error(self):
        machine = MultiHartMachine(spacemit_x60(), cpus=2)
        threads = [Thread("ok", alu_loop_body(10)),
                   Thread("bad", alu_loop_body(10), hart_id=5)]
        with pytest.raises(ValueError, match="harts 0..1"):
            RoundRobinScheduler(machine).run(threads)
        # Validation happens before anything runs: no quantum executed.
        assert threads[0].quanta == 0 and not threads[0].finished

    def test_negative_pin_is_a_clean_value_error(self):
        machine = MultiHartMachine(spacemit_x60(), cpus=2)
        with pytest.raises(ValueError, match="pinned"):
            RoundRobinScheduler(machine).run(
                [Thread("bad", alu_loop_body(10), hart_id=-1)])

    def test_explicit_pin_overrides_default_placement(self):
        machine = MultiHartMachine(spacemit_x60(), cpus=3)
        threads = [Thread("a", alu_loop_body(10), hart_id=2),
                   Thread("b", alu_loop_body(10), hart_id=2),
                   Thread("c", alu_loop_body(10))]   # default: index 2 % 3
        trace = RoundRobinScheduler(machine).run(threads)
        assert trace.threads_per_hart == {2: ["a", "b", "c"]}
        assert all(thread.finished for thread in threads)

    def test_smp_stat_rejects_empty_bodies(self):
        machine = MultiHartMachine(spacemit_x60(), cpus=2)
        with pytest.raises(ValueError, match="thread body"):
            smp_stat(machine, [])
        with pytest.raises(ValueError, match="thread body"):
            smp_record(machine, [])

    def test_same_seed_gives_identical_per_hart_sample_streams(self):
        workload = registry["forkjoin-calltree"]

        def record_once():
            machine = MultiHartMachine(spacemit_x60(), cpus=2)
            recording = smp_record(machine, workload.threads(2, FAST_SPEC),
                                   sample_period=2_000)
            return [
                [(s.cpu, s.ip, s.time, s.callchain) for s in hart.samples]
                for hart in recording.per_hart
            ]

        first = record_once()
        second = record_once()
        assert first == second
        assert any(stream for stream in first)   # the run actually sampled


class TestSystemWideEvents:
    def test_system_wide_equals_sum_of_per_cpu(self):
        """cpu=-1 attachment counts exactly what per-CPU attachments count.

        The workload and the scheduler are deterministic, so the same thread
        list on two fresh machines retires identical per-hart streams; one
        machine attaches system-wide, the other per CPU.
        """
        read_format = frozenset({ReadFormat.TOTAL_TIME_ENABLED,
                                 ReadFormat.TOTAL_TIME_RUNNING})
        attr = PerfEventAttr(event=HwEvent.INSTRUCTIONS,
                             read_format=read_format)
        threads = lambda: [Thread("a", alu_loop_body(120)),
                           Thread("b", alu_loop_body(80))]

        wide_machine = MultiHartMachine(thead_c910(), cpus=2)
        system_wide = wide_machine.open_system_wide(attr, cpu=-1)
        system_wide.enable()
        RoundRobinScheduler(wide_machine).run(threads())
        system_wide.disable()
        wide = system_wide.read()

        percpu_machine = MultiHartMachine(thead_c910(), cpus=2)
        per_cpu = [percpu_machine.open_system_wide(attr, cpu=cpu)
                   for cpu in (0, 1)]
        for handle in per_cpu:
            handle.enable()
        RoundRobinScheduler(percpu_machine).run(threads())
        for handle in per_cpu:
            handle.disable()
        singles = [handle.read() for handle in per_cpu]

        assert wide.value == sum(read.value for read in singles)
        assert [wide.count_on(0), wide.count_on(1)] == \
            [read.value for read in singles]
        # Both harts actually retired the instructions their threads ran.
        assert wide.count_on(0) == 3 * 120 and wide.count_on(1) == 3 * 80

    def test_smp_stat_aggregate_equals_per_hart_sum(self):
        machine = MultiHartMachine(spacemit_x60(), cpus=4)
        result = smp_stat(machine,
                          [(f"t{i}", alu_loop_body(50 + 10 * i))
                           for i in range(4)])
        for event in (HwEvent.CYCLES, HwEvent.INSTRUCTIONS):
            total = sum(result.count_on(cpu, event) for cpu in range(4))
            assert result.count(event) == total
        table = result.format()
        assert "cpu0" in table and "cpu3" in table and "total" in table

    def test_partial_open_failure_does_not_leak_fds(self):
        machine = MultiHartMachine(spacemit_x60(), cpus=2)
        # Sampling on cycles is impossible on the X60 -> open raises and no
        # fd stays behind on either hart.
        from repro.kernel.perf_event import PerfEventOpenError
        attr = PerfEventAttr(event=HwEvent.CYCLES, sample_period=1000)
        with pytest.raises(PerfEventOpenError):
            machine.open_system_wide(attr, cpu=-1)
        assert all(not hart.perf.open_events() for hart in machine.harts)


class TestParallelWorkloads:
    @pytest.mark.parametrize("name,param", [
        ("matmul-parallel", {"n": 8}),
        ("stream-triad-mt", {"n": 256}),
        ("forkjoin-calltree", {"scale": 1}),
    ])
    def test_implements_both_protocols(self, name, param):
        workload = registry.create(name, **param)
        assert isinstance(workload, ParallelWorkload)
        bodies = workload.threads(2, FAST_SPEC)
        assert len(bodies) >= 2
        assert all(callable(body) for _, body in bodies)

    def test_executable_runs_all_shards_sequentially(self):
        from repro.platforms.machine import Machine
        workload = registry.create("matmul-parallel", n=8)
        machine = Machine(spacemit_x60())
        task = machine.create_task(workload.name)
        workload.executable(machine, task, FAST_SPEC)()
        assert machine.instructions > 0
        assert task.depth == 0          # balanced push/pop

    def test_shards_cover_all_rows_exactly_once(self):
        workload = registry.create("matmul-parallel", n=10)
        machine = MultiHartMachine(spacemit_x60(), cpus=3)
        result = smp_stat(machine, workload.threads(3, FAST_SPEC))
        # 10 rows over 3 shards: 4 + 4 + 2; per-row work is identical, so
        # retired instructions split in the same 2:2:1 proportion.
        i0 = result.count_on(0, HwEvent.INSTRUCTIONS)
        i2 = result.count_on(2, HwEvent.INSTRUCTIONS)
        assert i0 > i2 > 0
        assert result.count(HwEvent.INSTRUCTIONS) > 0


class TestSessionSmp:
    def test_single_hart_spec_keeps_the_fast_path(self):
        session = Session("SpacemiT X60")
        run = session.run("micro-calltree", FAST_SPEC)
        assert run.cpus == 1 and run.schedule is None
        from repro.miniperf.record import RecordingResult
        assert isinstance(run.recording, RecordingResult)

    def test_smp_run_produces_per_hart_everything(self):
        session = Session("SpacemiT X60")
        spec = ProfileSpec(sample_period=2_000, cpus=2,
                           analyses=("stat", "hotspots", "flamegraph"))
        run = session.run("forkjoin-calltree", spec)
        assert run.cpus == 2
        assert len(run.stat.per_hart) == 2
        assert run.recording.cpus == 2
        assert {s.cpu for s in run.recording.samples} == {0, 1}
        assert [c.name for c in run.flame("cycles").sorted_children()] == \
            ["cpu0", "cpu1"]
        assert run.hotspots.total_samples == run.recording.sample_count
        assert run.schedule is not None
        payload = json.loads(run.to_json())
        assert payload["cpus"] == 2
        assert len(payload["stat"]["per_hart"]) == 2
        assert payload["schedule"]["cpus"] == 2

    def test_cpus_argument_overrides_spec(self):
        session = Session("T-Head C910")
        run = session.run("micro-calltree", FAST_SPEC.counting(), cpus=2)
        assert run.cpus == 2 and len(run.stat.per_hart) == 2

    def test_u74_smp_degrades_exactly_like_single_hart(self):
        session = Session("SiFive U74")
        spec = ProfileSpec(sample_period=2_000, cpus=2,
                           analyses=("stat", "hotspots", "flamegraph"))
        run = session.run("micro-calltree", spec)
        assert run.stat is not None
        assert "sampling" in run.errors and run.recording is None

    def test_smp_roofline_aggregates_roofs(self):
        session = Session("SpacemiT X60")
        run = session.run(registry.create("stream-triad-mt", n=512),
                          ProfileSpec(analyses=("roofline",), cpus=4))
        single = session.run(registry.create("stream-triad-mt", n=512),
                             ProfileSpec(analyses=("roofline",)))
        assert run.roofline.roofs.peak_gflops == pytest.approx(
            4 * single.roofline.roofs.peak_gflops)
        # Shared levels (DRAM and the X60's shared L2 LLC) keep their
        # single-instance bandwidth; the private L1 scales with the harts.
        for shared in ("DRAM", "L2"):
            assert run.roofline.roofs.bandwidth_gbps[shared] == pytest.approx(
                single.roofline.roofs.bandwidth_gbps[shared])
        assert run.roofline.roofs.bandwidth_gbps["L1D"] == pytest.approx(
            4 * single.roofline.roofs.bandwidth_gbps["L1D"])
        assert "4 harts" in run.roofline.roofs.source

    def test_compare_degrades_per_platform_on_impossible_hart_counts(self):
        # 8 harts exist on the X60 but not on the U74: the comparison keeps
        # the X60 run and records per-analysis errors for the U74 instead of
        # aborting.
        spec = ProfileSpec(cpus=8, analyses=("stat",))
        comparison = Session.compare(["SpacemiT X60", "SiFive U74"],
                                     "micro-calltree", spec)
        x60, u74 = comparison.runs
        assert x60.stat is not None and not x60.errors
        assert u74.stat is None and "harts" in u74.errors["stat"]

    def test_compare_carries_cpus_through(self):
        spec = ProfileSpec(sample_period=2_000, cpus=2,
                           analyses=("stat", "hotspots", "flamegraph"))
        comparison = Session.compare(["SpacemiT X60", "T-Head C910"],
                                     "forkjoin-calltree", spec)
        assert all(run.cpus == 2 for run in comparison.runs)
        assert comparison.flame_diffs          # both platforms sampled
        json.loads(comparison.to_json())

    def test_aggregate_roofline_is_identity_for_one_cpu(self):
        session = Session("SpacemiT X60")
        single = session.run(registry.create("stream-triad-mt", n=512),
                             ProfileSpec(analyses=("roofline",)))
        assert aggregate_roofline(single.roofline, 1) is single.roofline


class TestCliSmp:
    def run_cli(self, capsys, *argv):
        code = cli_main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_stat_cpus_json_has_per_hart_and_aggregate(self, capsys):
        code, out, _ = self.run_cli(
            capsys, "stat", "--workload", "matmul-parallel", "-n", "8",
            "--cpus", "2", "-p", "x60", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["cpus"] == 2
        assert len(payload["stat"]["per_hart"]) == 2
        assert payload["stat"]["aggregate"]["instructions"] > 0

    def test_stat_cpus_table_has_per_hart_columns(self, capsys):
        code, out, _ = self.run_cli(
            capsys, "stat", "--workload", "matmul-parallel", "-n", "8",
            "--cpus", "2", "-p", "x60")
        assert code == 0
        assert "cpu0" in out and "cpu1" in out and "total" in out

    def test_all_cpus_flag_uses_every_board_hart(self, capsys):
        code, out, _ = self.run_cli(
            capsys, "stat", "--workload", "micro-calltree", "-a",
            "-p", "T-Head C910", "--json")
        assert code == 0
        assert json.loads(out)["cpus"] == 4

    def test_record_cpus(self, capsys):
        code, out, _ = self.run_cli(
            capsys, "record", "--workload", "forkjoin-calltree",
            "--cpus", "2", "-p", "x60", "--period", "2000")
        assert code == 0
        assert "system-wide, 2 harts" in out and "Hotspots" in out

    def test_flamegraph_cpus_labels_harts(self, capsys):
        code, out, _ = self.run_cli(
            capsys, "flamegraph", "--workload", "forkjoin-calltree",
            "--cpus", "2", "-p", "x60", "--period", "2000", "--width", "60")
        assert code == 0
        assert "cpu0" in out and "cpu1" in out

    def test_platforms_subcommand(self, capsys):
        code, out, _ = self.run_cli(capsys, "platforms")
        assert code == 0
        assert "Banana Pi F3" in out and "harts" in out
        code, out, _ = self.run_cli(capsys, "platforms", "--json")
        rows = json.loads(out)
        assert {row["name"]: row["harts"] for row in rows}["SpacemiT X60"] == 8

    def test_capabilities_json(self, capsys):
        code, out, _ = self.run_cli(capsys, "capabilities", "--json")
        assert code == 0
        rows = json.loads(out)
        assert [row["Core"] for row in rows] == \
            ["SiFive U74", "T-Head C910", "SpacemiT X60"]

    def test_too_many_cpus_degrades_to_a_clean_run_error(self, capsys):
        code, _, err = self.run_cli(
            capsys, "stat", "--workload", "micro-calltree",
            "--cpus", "64", "-p", "u74")
        assert code == 1
        assert "stat failed" in err and "harts" in err

    def test_nonpositive_cpus_is_a_clean_error(self, capsys):
        for bogus in ("0", "-2"):
            code, _, err = self.run_cli(
                capsys, "stat", "--workload", "micro-calltree",
                "--cpus", bogus, "-p", "x60")
            assert code == 2
            assert "cpus" in err

    def test_bad_workload_scale_is_a_clean_error(self, capsys):
        code, _, err = self.run_cli(
            capsys, "stat", "--workload", "micro-calltree", "--scale", "-3")
        assert code == 2
        assert "positive integer" in err
