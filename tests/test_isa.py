"""Tests for the ISA layer: machine ops, privilege, CSR file."""

import pytest

from repro.isa import (
    CsrFile,
    CsrAccessError,
    CSR_MCYCLE,
    CSR_MCOUNTEREN,
    CSR_MVENDORID,
    PrivilegeMode,
)
from repro.isa.csr import CpuIdentity, hpm_counter_csr, hpm_event_csr, user_counter_csr
from repro.isa.machine_ops import (
    MachineOp,
    OpClass,
    branch,
    fp_fma,
    load,
    op_is_flop,
    op_is_memory,
    store,
    vector_fma,
    vector_load,
)
from repro.isa.privilege import ModeCycleAccounting, Trap, TrapCause, ecall_cause_for_mode
from repro.isa.registers import IntRegisterFile, VectorRegisterFile


IDENTITY = CpuIdentity(mvendorid=0x710, marchid=0x60, mimpid=0x1)


class TestMachineOps:
    def test_load_is_memory_and_not_flop(self):
        op = load(8, address=0x1000)
        assert op.is_memory and op.is_load and not op.is_store
        assert op.flop_count == 0
        assert op_is_memory(op.opclass)
        assert not op_is_flop(op.opclass)

    def test_store_is_store(self):
        op = store(4, address=0x2000)
        assert op.is_store and op.is_memory

    def test_fma_counts_two_flops(self):
        assert fp_fma().flop_count == 2

    def test_vector_fma_counts_two_flops_per_lane(self):
        assert vector_fma(lanes=8).flop_count == 16

    def test_vector_load_lanes_and_bytes(self):
        op = vector_load(32, lanes=8, address=0x100)
        assert op.is_vector and op.is_load
        assert op.size_bytes == 32

    def test_branch_flags(self):
        op = branch(taken=True, target=0x40, pc=0x80)
        assert op.is_branch and op.is_control and op.taken

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MachineOp(OpClass.LOAD, size_bytes=-1)

    def test_zero_lanes_rejected(self):
        with pytest.raises(ValueError):
            MachineOp(OpClass.VECTOR_FMA, lanes=0)

    def test_int_op_count(self):
        assert MachineOp(OpClass.INT_ALU).int_op_count == 1
        assert MachineOp(OpClass.VECTOR_ALU, lanes=4).int_op_count == 4
        assert MachineOp(OpClass.FP_ADD).int_op_count == 0


class TestPrivilege:
    def test_ordering(self):
        assert PrivilegeMode.MACHINE.can_access(PrivilegeMode.SUPERVISOR)
        assert not PrivilegeMode.USER.can_access(PrivilegeMode.SUPERVISOR)

    def test_ecall_causes(self):
        assert ecall_cause_for_mode(PrivilegeMode.USER) is TrapCause.ECALL_FROM_U
        assert ecall_cause_for_mode(PrivilegeMode.SUPERVISOR) is TrapCause.ECALL_FROM_S
        assert ecall_cause_for_mode(PrivilegeMode.MACHINE) is TrapCause.ECALL_FROM_M

    def test_trap_is_exception(self):
        with pytest.raises(Trap):
            raise Trap(TrapCause.ILLEGAL_INSTRUCTION, tval=0xB00)

    def test_mode_cycle_accounting(self):
        accounting = ModeCycleAccounting()
        accounting.add(PrivilegeMode.USER, 100)
        accounting.add(PrivilegeMode.SUPERVISOR, 20)
        accounting.add(PrivilegeMode.MACHINE, 5)
        assert accounting.split() == (100, 20, 5)
        assert accounting.total == 125
        with pytest.raises(ValueError):
            accounting.add(PrivilegeMode.USER, -1)


class TestCsrFile:
    def test_identity_readable_from_machine_mode_only(self):
        csr = CsrFile(IDENTITY)
        assert csr.read(CSR_MVENDORID, PrivilegeMode.MACHINE) == 0x710
        with pytest.raises(CsrAccessError):
            csr.read(CSR_MVENDORID, PrivilegeMode.SUPERVISOR)

    def test_identity_is_read_only(self):
        csr = CsrFile(IDENTITY)
        with pytest.raises(CsrAccessError):
            csr.write(CSR_MVENDORID, 1, PrivilegeMode.MACHINE)

    def test_machine_counter_requires_machine_mode(self):
        csr = CsrFile(IDENTITY)
        with pytest.raises(CsrAccessError):
            csr.write(CSR_MCYCLE, 42, PrivilegeMode.SUPERVISOR)
        csr.write(CSR_MCYCLE, 42, PrivilegeMode.MACHINE)
        assert csr.read(CSR_MCYCLE, PrivilegeMode.MACHINE) == 42

    def test_supervisor_shadow_read_requires_delegation(self):
        csr = CsrFile(IDENTITY)
        csr.set_counter_value(0, 1234)
        shadow = user_counter_csr(0)
        with pytest.raises(CsrAccessError):
            csr.read(shadow, PrivilegeMode.SUPERVISOR)
        csr.delegate_to_supervisor(0)
        assert csr.read(shadow, PrivilegeMode.SUPERVISOR) == 1234

    def test_user_shadow_requires_both_delegations(self):
        csr = CsrFile(IDENTITY)
        csr.set_counter_value(2, 77)
        shadow = user_counter_csr(2)
        csr.delegate_to_supervisor(2)
        with pytest.raises(CsrAccessError):
            csr.read(shadow, PrivilegeMode.USER)
        csr.delegate_to_user(2)
        assert csr.read(shadow, PrivilegeMode.USER) == 77

    def test_counter_inhibit_blocks_increment(self):
        csr = CsrFile(IDENTITY)
        csr.increment_counter(0, 10)
        csr.set_counter_inhibit(0, True)
        csr.increment_counter(0, 10)
        assert csr.counter_value(0) == 10
        csr.set_counter_inhibit(0, False)
        csr.increment_counter(0, 5)
        assert csr.counter_value(0) == 15

    def test_counter_wraps_at_64_bits(self):
        csr = CsrFile(IDENTITY)
        csr.set_counter_value(0, (1 << 64) - 1)
        csr.increment_counter(0, 2)
        assert csr.counter_value(0) == 1

    def test_event_selector_roundtrip(self):
        csr = CsrFile(IDENTITY)
        csr.set_event_selector(3, 0x8001)
        assert csr.event_selector(3) == 0x8001

    def test_unimplemented_hpm_counters_read_zero(self):
        csr = CsrFile(IDENTITY, num_hpm_counters=2)
        # Counter index 10 is not implemented with only 2 generic counters.
        assert csr.counter_value(10) == 0
        csr.increment_counter(10, 5)
        assert csr.counter_value(10) == 0

    def test_hpm_index_validation(self):
        with pytest.raises(ValueError):
            hpm_counter_csr(2)
        with pytest.raises(ValueError):
            hpm_event_csr(32)

    def test_unknown_csr_rejected(self):
        csr = CsrFile(IDENTITY)
        with pytest.raises(CsrAccessError):
            csr.read(0x5F0, PrivilegeMode.MACHINE)


class TestRegisters:
    def test_x0_is_hardwired_zero(self):
        regs = IntRegisterFile()
        regs.write(0, 1234)
        assert regs.read(0) == 0

    def test_named_access(self):
        regs = IntRegisterFile()
        regs.write_by_name("a0", 55)
        assert regs.read_by_name("a0") == 55
        assert regs.snapshot()["a0"] == 55

    def test_vector_lanes_from_vlen_and_sew(self):
        vrf = VectorRegisterFile(vlen_bits=256, sew_bits=32)
        assert vrf.lanes == 8
        assert vrf.configure(sew_bits=64) == 4

    def test_vector_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            VectorRegisterFile(vlen_bits=100)
        vrf = VectorRegisterFile()
        with pytest.raises(ValueError):
            vrf.configure(sew_bits=10)
