"""The dataflow framework and the address-range analysis it carries.

Three layers:

* the solver and its two executable-documentation clients (liveness,
  reaching definitions) on real compiled kernels;
* interval exactness -- the address-range analysis must bound the STREAM
  triad and the row-sharded matmul shard to their *exact* byte regions
  (off-by-one-row bounds would make the race detector either unsound or
  uselessly conservative);
* the widening policy -- nested loops keep loop-invariant outer bounds
  (the selective-widening property that makes matmul rows exact).
"""

import pytest

from repro.analysis.dataflow import (
    live_in,
    max_live_values,
    pointer_root,
    reaching_definitions,
    solve,
)
from repro.analysis.ranges import analyze_address_ranges
from repro.compiler.cache import compile_source_cached
from repro.compiler.ir.instructions import Alloca, Store
from repro.platforms import spacemit_x60
from repro.vm import Memory
from repro.workloads.parallel import MATMUL_ROWS_SOURCE, TRIAD_SLICE_SOURCE


def _compile(source: str, name: str):
    return compile_source_cached(source, name, spacemit_x60(),
                                 enable_vectorizer=False)


def _triad():
    return _compile(TRIAD_SLICE_SOURCE, "triad.c").get_function("triad")


def _matmul_rows():
    return _compile(MATMUL_ROWS_SOURCE, "matmul_rows.c").get_function(
        "matmul_rows")


# -- solver + classic clients ----------------------------------------------------------


def test_solver_rejects_unknown_direction():
    from repro.analysis.dataflow import DataflowAnalysis

    class Sideways(DataflowAnalysis):
        direction = "sideways"

    with pytest.raises(ValueError, match="sideways"):
        solve(_triad(), Sideways())


def test_liveness_loop_carried_values_live_at_loop_head():
    function = _triad()
    sets = live_in(function)
    heads = [block for block in function.blocks if "cond" in block.name]
    assert heads, "triad lost its loop header block"
    # The induction slot (or its promoted SSA value) must be live at the head.
    assert any(sets[head] for head in heads)
    assert max_live_values(function) >= 1


def test_reaching_definitions_entry_empty_and_loop_accumulates():
    function = _matmul_rows()
    reaching = reaching_definitions(function)
    assert reaching[function.entry_block] == frozenset()
    # Deep inside the loop nest every pointer argument's stores reach.
    innermost = max(reaching.values(), key=len)
    roots = {pointer_root(store.pointer) for store in innermost}
    assert len(roots) >= 2
    assert all(isinstance(store, Store) for store in innermost)


def test_pointer_root_walks_geps_to_arguments_and_allocas():
    function = _triad()
    roots = set()
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, Store):
                root = pointer_root(inst.pointer)
                if root is not None:
                    roots.add(type(root).__name__)
    assert "Alloca" in roots  # the frontend's parameter slots
    # Pointer values loaded back out of slots root at the slot itself;
    # resolving them to the argument is the range analysis' job.
    assert all(name in ("Alloca", "Argument") for name in roots)


# -- interval exactness ----------------------------------------------------------------


def test_triad_regions_are_exact():
    n = 4096
    memory = Memory()
    a = memory.alloc_float_array([0.0] * n)
    b = memory.alloc_float_array([1.0] * n)
    c = memory.alloc_float_array([2.0] * n)
    result = analyze_address_ranges(_triad(), (a, b, c, 3.0, n))
    regions = {r.name: r for r in result.sorted_regions() if not r.is_private}
    assert sorted(regions) == ["a", "b", "c"]
    assert regions["a"].absolute() == (a, a + 4 * n)
    assert regions["b"].absolute() == (b, b + 4 * n)
    assert regions["c"].absolute() == (c, c + 4 * n)
    assert regions["a"].writes and not regions["a"].reads
    assert regions["b"].reads and not regions["b"].writes
    assert all(r.stride == 4 for r in regions.values())
    assert result.fully_bounded


def test_matmul_rows_shard_bounds_are_exact_per_row_slice():
    """The shard touching rows [lo, hi) must be bounded to exactly those
    rows of A and C -- the property the race detector's disjointness proof
    rests on -- while B stays fully shared."""
    n, lo, hi = 8, 2, 5
    memory = Memory()
    a = memory.alloc_float_array([0.0] * n * n)
    b = memory.alloc_float_array([0.0] * n * n)
    c = memory.alloc_float_array([0.0] * n * n)
    result = analyze_address_ranges(_matmul_rows(), (a, b, c, n, lo, hi))
    regions = {r.name: r for r in result.sorted_regions() if not r.is_private}
    assert regions["A"].absolute() == (a + 4 * lo * n, a + 4 * hi * n)
    assert regions["B"].absolute() == (b, b + 4 * n * n)
    assert regions["C"].absolute() == (c + 4 * lo * n, c + 4 * hi * n)
    assert regions["C"].writes and not regions["C"].reads
    assert result.fully_bounded


def test_unbounded_without_concrete_arguments():
    """With no argument values the trip counts are unknown: the analysis
    must degrade to unbounded honestly rather than invent bounds."""
    result = analyze_address_ranges(_triad(), None)
    assert not result.fully_bounded
    assert result.unresolved


def test_quadratic_subscript_bounded_by_interval_arithmetic():
    source = """
    void scatter(float* a, long n) {
      for (long i = 0; i < n; i++) {
        a[i * i] = 1.0f;
      }
    }
    """
    function = _compile(source, "scatter.c").get_function("scatter")
    memory = Memory()
    a = memory.alloc_float_array([0.0] * 64)
    result = analyze_address_ranges(function, (a, 8))
    region = next(r for r in result.sorted_regions() if r.name == "a")
    # i in [0, 7] so i*i in [0, 49]: last store covers bytes [196, 200).
    assert region.absolute() == (a, a + 200)


def test_data_dependent_subscript_reports_unbounded_not_wrong():
    """An index loaded from memory has no static bound: the analysis must
    degrade to unbounded honestly rather than invent one."""
    source = """
    void gather(float* a, long* idx, long n) {
      for (long i = 0; i < n; i++) {
        a[idx[i]] = 1.0f;
      }
    }
    """
    function = _compile(source, "gather.c").get_function("gather")
    memory = Memory()
    a = memory.alloc_float_array([0.0] * 64)
    idx = memory.alloc_float_array([0.0] * 8)
    result = analyze_address_ranges(function, (a, idx, 8))
    region = next(r for r in result.sorted_regions() if r.name == "a")
    assert not region.bounded
    assert result.unresolved


# -- widening policy -------------------------------------------------------------------


def test_nested_loops_keep_outer_induction_bounds():
    """Selective widening: the inner loop head must not widen the outer
    induction variable it never stores (the matmul-exactness property,
    reduced to the minimal nest)."""
    source = """
    void nest(float* a, long n) {
      for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
          a[i * n + j] = 0.0f;
        }
      }
    }
    """
    function = _compile(source, "nest.c").get_function("nest")
    memory = Memory()
    n = 6
    a = memory.alloc_float_array([0.0] * n * n)
    result = analyze_address_ranges(function, (a, n))
    region = next(r for r in result.sorted_regions() if r.name == "a")
    assert region.absolute() == (a, a + 4 * n * n)
    assert result.fully_bounded


def test_alloca_rooted_regions_are_private():
    """Alloca roots classify as private (per-thread stack), argument roots
    as shared -- the distinction the race detector filters on."""
    from repro.compiler.ir.types import FloatType
    from repro.compiler.ir.values import Argument
    from repro.analysis.ranges import Region

    alloca = Alloca(FloatType(32), name="slot")
    argument = Argument(FloatType(32), "a", 0)
    assert Region(name="slot", root=alloca).is_private
    assert not Region(name="a", root=argument).is_private
