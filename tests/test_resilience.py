"""The resilience layer: client retries, circuit breaker, graceful drain.

Covers the three pieces individually (RetryPolicy math, CircuitBreaker
state machine under a fake clock, BackgroundServer failure surfacing) and
the daemon's shutdown semantics end to end: an in-flight request either
completes normally or receives a clean 503 ``ShuttingDown`` -- never a hung
connection -- under both a direct drain and a real SIGTERM.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro import faults
from repro.service.client import RetryPolicy, ServiceClient, ServiceError
from repro.service.daemon import BackgroundServer, ServiceConfig
from repro.service.resilience import (
    ALLOW,
    PROBE,
    REFUSE_OPEN,
    REFUSE_QUARANTINED,
    CircuitBreaker,
)

_COUNTING = {"events": ["cycles", "instructions"], "analyses": ["stat"]}


@pytest.fixture(autouse=True)
def _clean_injector():
    faults.install(None)
    yield
    faults.install(None)
    faults.reset()


# -- RetryPolicy --------------------------------------------------------------------------


def _error(status, retry_after=None):
    payload = {"error": {"type": "X", "message": "m"}}
    if retry_after is not None:
        payload["error"]["retry_after"] = retry_after
    return ServiceError(status, payload)


def test_retry_policy_retryable_statuses():
    policy = RetryPolicy()
    assert all(policy.retryable(_error(status))
               for status in (0, 429, 500, 502, 503, 504))
    assert not any(policy.retryable(_error(status))
                   for status in (400, 403, 404, 413))
    assert not RetryPolicy(retry_unreachable=False).retryable(_error(0))


def test_retry_policy_delay_is_deterministic_exponential():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5)
    assert [policy.delay(n) for n in range(4)] == [0.1, 0.2, 0.4, 0.5]


def test_retry_policy_honors_retry_after_and_caps_it():
    policy = RetryPolicy(base_delay=0.1, max_delay=5.0)
    assert policy.delay(0, retry_after=2.5) == 2.5
    assert policy.delay(0, retry_after=60.0) == 5.0
    # A hint smaller than the planned backoff never shortens it.
    assert policy.delay(3, retry_after=0.01) == pytest.approx(0.8)


def test_client_retries_transient_errors_then_succeeds():
    replies = [_error(503), _error(503), "ok"]
    slept = []
    client = ServiceClient("http://example.invalid",
                           retry=RetryPolicy(attempts=3, base_delay=0.05),
                           sleep=slept.append)

    def fake_once(method, path, body=None, headers=None):
        reply = replies.pop(0)
        if isinstance(reply, ServiceError):
            raise reply
        return reply

    client._request_once = fake_once
    assert client._request("GET", "/healthz") == "ok"
    assert slept == [0.05, 0.1]


def test_client_retry_budget_is_total_attempts():
    calls = []
    client = ServiceClient("http://example.invalid",
                           retry=RetryPolicy(attempts=3, base_delay=0.01),
                           sleep=lambda _s: None)

    def always_503(method, path, body=None, headers=None):
        calls.append(path)
        raise _error(503)

    client._request_once = always_503
    with pytest.raises(ServiceError):
        client._request("POST", "/run")
    assert len(calls) == 3


def test_client_never_retries_client_errors():
    calls = []
    client = ServiceClient("http://example.invalid",
                           retry=RetryPolicy(attempts=5),
                           sleep=lambda _s: None)

    def bad_request(method, path, body=None, headers=None):
        calls.append(path)
        raise _error(400)

    client._request_once = bad_request
    with pytest.raises(ServiceError):
        client._request("POST", "/run")
    assert len(calls) == 1


def test_client_retry_respects_the_backoff_deadline():
    calls = []
    client = ServiceClient(
        "http://example.invalid",
        retry=RetryPolicy(attempts=10, base_delay=1.0, multiplier=2.0,
                          deadline=3.0),
        sleep=lambda _s: None)

    def always_503(method, path, body=None, headers=None):
        calls.append(path)
        raise _error(503)

    client._request_once = always_503
    with pytest.raises(ServiceError):
        client._request("POST", "/run")
    # Planned backoff 1 + 2 = 3; the next delay (4) would exceed the
    # deadline, so the fourth attempt never happens.
    assert len(calls) == 3


def test_client_honors_retry_after_hint():
    replies = [_error(429, retry_after=0.7), "ok"]
    slept = []
    client = ServiceClient("http://example.invalid",
                           retry=RetryPolicy(attempts=2, base_delay=0.05),
                           sleep=slept.append)

    def fake_once(method, path, body=None, headers=None):
        reply = replies.pop(0)
        if isinstance(reply, ServiceError):
            raise reply
        return reply

    client._request_once = fake_once
    assert client._request("POST", "/run") == "ok"
    assert slept == [0.7]


def test_client_without_policy_fails_immediately():
    calls = []
    client = ServiceClient("http://example.invalid")

    def always_503(method, path, body=None, headers=None):
        calls.append(path)
        raise _error(503)

    client._request_once = always_503
    with pytest.raises(ServiceError):
        client._request("POST", "/run")
    assert len(calls) == 1


# -- CircuitBreaker -----------------------------------------------------------------------


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _breaker(**kwargs):
    clock = _Clock()
    kwargs.setdefault("threshold", 3)
    kwargs.setdefault("window", 30.0)
    kwargs.setdefault("cooldown", 5.0)
    kwargs.setdefault("quarantine_after", 2)
    return CircuitBreaker(clock=clock, **kwargs), clock


def test_breaker_opens_after_threshold_crashes_in_window():
    breaker, clock = _breaker()
    for n in range(3):
        assert breaker.state() == "closed"
        breaker.record_crash(f"key-{n}")
        clock.now += 1.0
    assert breaker.state() == "open"
    verdict, retry_after = breaker.admit("key-9")
    assert verdict == REFUSE_OPEN
    assert 0 < retry_after <= 5.0


def test_breaker_ignores_crashes_outside_the_window():
    breaker, clock = _breaker(window=10.0)
    breaker.record_crash("a")
    clock.now = 11.0
    breaker.record_crash("b")
    clock.now = 12.0
    breaker.record_crash("c")
    assert breaker.state() == "closed", "old crashes age out"


def test_breaker_half_open_admits_exactly_one_probe():
    breaker, clock = _breaker()
    for n in range(3):
        breaker.record_crash(f"k{n}")
    clock.now = 6.0  # past cooldown
    assert breaker.state() == "half_open"
    assert breaker.admit("p1")[0] == PROBE
    assert breaker.admit("p2")[0] == REFUSE_OPEN, "one probe at a time"


def test_breaker_probe_success_closes_and_clears():
    breaker, clock = _breaker()
    for n in range(3):
        breaker.record_crash(f"k{n}")
    clock.now = 6.0
    assert breaker.admit("p")[0] == PROBE
    breaker.record_success("p", probe=True)
    assert breaker.state() == "closed"
    assert breaker.admit("anything")[0] == ALLOW
    assert breaker.to_dict()["crashes_in_window"] == 0


def test_breaker_probe_crash_reopens_for_a_fresh_cooldown():
    breaker, clock = _breaker()
    for n in range(3):
        breaker.record_crash(f"k{n}")
    clock.now = 6.0
    assert breaker.admit("p")[0] == PROBE
    breaker.record_crash("p", probe=True)
    assert breaker.state() == "open"
    clock.now = 10.0  # 4s into the new cooldown
    assert breaker.state() == "open"
    clock.now = 11.5
    assert breaker.state() == "half_open"
    assert breaker.opens == 2


def test_breaker_aborted_probe_allows_the_next_probe():
    breaker, clock = _breaker()
    for n in range(3):
        breaker.record_crash(f"k{n}")
    clock.now = 6.0
    assert breaker.admit("p1")[0] == PROBE
    breaker.abort_probe()  # timeout/validation error: neither success nor crash
    assert breaker.admit("p2")[0] == PROBE


def test_breaker_quarantines_repeat_offenders():
    breaker, _clock = _breaker(threshold=100)  # keep the breaker closed
    breaker.record_crash("poison")
    assert breaker.admit("poison")[0] == ALLOW
    breaker.record_crash("poison")
    assert breaker.admit("poison")[0] == REFUSE_QUARANTINED
    assert breaker.admit("innocent")[0] == ALLOW
    assert breaker.to_dict()["quarantined"] == ["poison"]


def test_breaker_success_resets_a_keys_crash_count():
    breaker, _clock = _breaker(threshold=100)
    breaker.record_crash("flaky")
    breaker.record_success("flaky")
    breaker.record_crash("flaky")
    assert breaker.admit("flaky")[0] == ALLOW, "count reset by the success"


def test_breaker_requires_an_explicit_clock():
    with pytest.raises(ValueError, match="clock"):
        CircuitBreaker()


# -- BackgroundServer failure surfacing ---------------------------------------------------


def test_background_server_raises_startup_failures():
    # Binding an unroutable address fails inside start(); the context
    # manager must re-raise instead of returning a dead server.
    config = ServiceConfig(host="203.0.113.1", port=0, workers=0,
                           warm_kernels=False)
    with pytest.raises(OSError):
        with BackgroundServer(config):
            pass  # pragma: no cover


def test_background_server_surfaces_late_failures_on_exit():
    config = ServiceConfig(port=0, workers=0, warm_kernels=False)
    server = BackgroundServer(config)
    with pytest.raises(RuntimeError, match="close blew up"):
        with server:
            async def exploding_close(drain_timeout=None):
                raise RuntimeError("close blew up")
            server.service.close = exploding_close
    assert server._failure, "the late failure was captured"


# -- daemon shutdown semantics ------------------------------------------------------------


def _get_healthz(address):
    with urllib.request.urlopen(address + "/healthz", timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def _drain_config(**overrides):
    settings = dict(port=0, workers=0, warm_kernels=False,
                    drain_timeout=0.5)
    settings.update(overrides)
    return ServiceConfig(**settings)


def _start_request(address, results):
    def body():
        try:
            client = ServiceClient(address, timeout=30)
            results.append(("ok", client.run(
                {"platform": "x60", "workload": "memset",
                 "params": {"n": 64}, "spec": dict(_COUNTING)},
                bypass_cache=True)))
        except ServiceError as error:
            results.append(("error", error))

    thread = threading.Thread(target=body, daemon=True)
    thread.start()
    return thread


def test_drain_lets_in_flight_requests_complete():
    faults.install("pool.slow_worker:ms=200:times=1")
    with BackgroundServer(_drain_config(drain_timeout=10.0)) as server:
        results = []
        thread = _start_request(server.address, results)
        time.sleep(0.05)  # let the request reach the pool
        summary = server.drain()
        thread.join(timeout=30)
        assert results and results[0][0] == "ok", \
            "the in-flight request completed during the drain"
        assert summary["aborted_in_flight"] is False


def test_drain_rejects_new_requests_with_shutting_down():
    with BackgroundServer(_drain_config()) as server:
        address = server.address
        server.drain()
        client = ServiceClient(address)
        with pytest.raises(ServiceError) as excinfo:
            client.run({"platform": "x60", "workload": "memset",
                        "params": {"n": 64}, "spec": dict(_COUNTING)})
        # Either the listener is already closed (Unreachable) or admission
        # answers a clean 503 ShuttingDown; both are clean failures.
        assert excinfo.value.status in (0, 503)
        if excinfo.value.status == 503:
            assert excinfo.value.kind == "ShuttingDown"


def test_drain_past_deadline_answers_clean_503():
    faults.install("pool.slow_worker:ms=5000:times=1")
    with BackgroundServer(_drain_config(drain_timeout=0.2)) as server:
        results = []
        thread = _start_request(server.address, results)
        time.sleep(0.05)
        summary = server.drain()
        assert summary["aborted_in_flight"] is True
        thread.join(timeout=30)
        assert results, "the client got a response, not a hung connection"
        kind, value = results[0]
        assert kind == "error"
        assert value.status == 503
        assert value.kind == "ShuttingDown"
        assert value.retry_after is not None


def test_drain_reports_degraded_status_in_healthz():
    with BackgroundServer(_drain_config()) as server:
        assert _get_healthz(server.address)["status"] == "ok"
        assert "breaker" in _get_healthz(server.address)
        server.drain()
        # The listener is closed after a drain; status is reported by the
        # service object (a real probe would see connection refused).
        assert server.service._healthz()["status"] == "draining"


def test_sigterm_drains_and_exits_cleanly(tmp_path):
    """`repro serve` under a real SIGTERM: the daemon announces, serves,
    and exits 0 through the graceful-drain path."""
    script = (
        "from repro.toolchain.cli import main\n"
        "import sys\n"
        "sys.exit(main(['serve', '--port', '0', '--workers', '0',\n"
        "               '--no-warm-kernels', '--drain-timeout', '2']))\n")
    env = dict(os.environ,
               PYTHONPATH=os.pathsep.join(
                   [os.path.join(os.getcwd(), "src"),
                    os.environ.get("PYTHONPATH", "")]).rstrip(os.pathsep))
    process = subprocess.Popen(
        [sys.executable, "-c", script], stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, env=env, cwd=str(tmp_path))
    try:
        line = process.stdout.readline()
        assert "listening on" in line
        address = line.strip().rsplit(" ", 1)[-1]
        assert _get_healthz(address)["status"] == "ok"
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
