"""Tests for the IR: types, builder, printer/parser round-trip, verifier."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.frontend import compile_source
from repro.compiler.ir import (
    F32,
    F64,
    I1,
    I32,
    I64,
    IRBuilder,
    FunctionType,
    Module,
    PointerType,
    VectorType,
    VerificationError,
    parse_module,
    print_module,
    verify_module,
)
from repro.compiler.ir.instructions import BinaryOp, Jump, Ret
from repro.compiler.ir.parser import IRParseError
from repro.compiler.ir.types import IntType, named_type
from repro.compiler.ir.values import Constant


class TestTypes:
    def test_sizes(self):
        assert I32.size_bytes() == 4
        assert I64.size_bytes() == 8
        assert F32.size_bytes() == 4
        assert F64.size_bytes() == 8
        assert PointerType(F32).size_bytes() == 8
        assert VectorType(F32, 8).size_bytes() == 32

    def test_equality_and_hash(self):
        assert IntType(32) == I32
        assert hash(IntType(32)) == hash(I32)
        assert I32 != I64
        assert PointerType(F32) == PointerType(F32)

    def test_int_wrap(self):
        assert I32.wrap(2 ** 31) == -(2 ** 31)
        assert I32.wrap(-1) == -1
        assert I1.wrap(3) == 1

    def test_named_type(self):
        assert named_type("i64") is not None and named_type("i64") == I64
        assert named_type("bogus") is None

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            IntType(24)
        with pytest.raises(ValueError):
            VectorType(PointerType(I8:= IntType(8)), 4)


class TestBuilderAndVerifier:
    def _simple_module(self):
        module = Module("m")
        function = module.create_function("addmul", FunctionType(I64, [I64, I64]),
                                          ["a", "b"])
        block = function.add_block("entry")
        builder = IRBuilder(block)
        total = builder.add(function.args[0], function.args[1])
        product = builder.mul(total, function.args[1])
        builder.ret(product)
        return module

    def test_builder_constructs_verified_module(self):
        module = self._simple_module()
        verify_module(module)
        function = module.get_function("addmul")
        assert function.instruction_count() == 3

    def test_missing_terminator_detected(self):
        module = Module("m")
        function = module.create_function("f", FunctionType(I64, [I64]), ["x"])
        block = function.add_block("entry")
        builder = IRBuilder(block)
        builder.add(function.args[0], Constant(I64, 1))
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_return_type_mismatch_detected(self):
        module = Module("m")
        function = module.create_function("f", FunctionType(I64, []), [])
        block = function.add_block("entry")
        builder = IRBuilder(block)
        builder.ret(Constant(I32, 0))
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_type_mismatch_in_binary_op_rejected_at_construction(self):
        with pytest.raises(TypeError):
            BinaryOp("add", Constant(I64, 1), Constant(I32, 1))

    def test_call_arg_count_checked(self):
        module = Module("m")
        callee = module.create_function("callee", FunctionType(I64, [I64]), ["x"])
        callee_block = callee.add_block("entry")
        IRBuilder(callee_block).ret(callee.args[0])
        caller = module.create_function("caller", FunctionType(I64, []), [])
        block = caller.add_block("entry")
        builder = IRBuilder(block)
        result = builder.call(callee, [])     # wrong arity
        builder.ret(result)
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_store_type_mismatch(self):
        module = Module("m")
        function = module.create_function("f", FunctionType(I64, []), [])
        block = function.add_block("entry")
        builder = IRBuilder(block)
        slot = builder.alloca(F32)
        with pytest.raises(TypeError):
            builder.store(Constant(I64, 3), slot)

    def test_multiple_terminators_rejected_by_block(self):
        module = Module("m")
        function = module.create_function("f", FunctionType(I64, []), [])
        block = function.add_block("entry")
        block.append(Ret(Constant(I64, 0)))
        with pytest.raises(ValueError):
            block.append(Ret(Constant(I64, 0)))


SOURCE_DOT = """
float dot(float* a, float* b, long n) {
  float sum = 0.0;
  for (long i = 0; i < n; i++) {
    sum += a[i] * b[i];
  }
  return sum;
}
"""

SOURCE_BRANCHY = """
long collatz_steps(long x, long limit) {
  long steps = 0;
  while (x > 1 && steps < limit) {
    if (x % 2 == 0) {
      x = x / 2;
    } else {
      x = 3 * x + 1;
    }
    steps++;
  }
  return steps;
}
"""


class TestPrinterParserRoundTrip:
    @pytest.mark.parametrize("source", [SOURCE_DOT, SOURCE_BRANCHY])
    def test_roundtrip_preserves_structure(self, source):
        module = compile_source(source, "t.c")
        text = print_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        text2 = print_module(reparsed)
        assert text == text2       # printing is a fixed point after one round trip
        for function in module.defined_functions():
            other = reparsed.get_function(function.name)
            assert len(other.blocks) == len(function.blocks)
            assert other.instruction_count() == function.instruction_count()

    def test_declarations_roundtrip(self):
        module = compile_source(SOURCE_DOT, "t.c")
        module.declare_function("sink", FunctionType(F32, [F32, I64]))
        reparsed = parse_module(print_module(module))
        assert reparsed.get_function("sink").is_declaration

    def test_parse_error_on_garbage(self):
        with pytest.raises(IRParseError):
            parse_module("define broken {\n}")

    def test_parse_error_on_undefined_value(self):
        text = """
define i64 @f(i64 %x) {
entry:
  %y = add i64 %x, %missing
  ret i64 %y
}
"""
        with pytest.raises(IRParseError):
            parse_module(text)

    def test_parse_error_on_unknown_instruction(self):
        text = """
define void @f() {
entry:
  frobnicate i64 1
  ret void
}
"""
        with pytest.raises(IRParseError):
            parse_module(text)


@st.composite
def random_expression_source(draw):
    """Generate a tiny KernelC function computing an integer expression."""
    n_statements = draw(st.integers(min_value=1, max_value=4))
    lines = ["long f(long a, long b) {", "  long x = a + 1;", "  long y = b + 2;"]
    variables = ["a", "b", "x", "y"]
    operators = ["+", "-", "*"]
    for i in range(n_statements):
        lhs = draw(st.sampled_from(variables))
        rhs = draw(st.sampled_from(variables))
        op = draw(st.sampled_from(operators))
        lines.append(f"  long t{i} = {lhs} {op} {rhs};")
        variables.append(f"t{i}")
    lines.append(f"  return {variables[-1]};")
    lines.append("}")
    return "\n".join(lines)


class TestRoundTripProperty:
    @given(random_expression_source())
    @settings(max_examples=30, deadline=None)
    def test_random_programs_roundtrip(self, source):
        module = compile_source(source, "gen.c")
        text = print_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert print_module(reparsed) == text
