"""Smoke tests for the miniperf CLI: every subcommand, multiple platforms.

All tests go through ``main(argv)`` exactly like a shell invocation.  The
tiny ``micro-calltree`` workload and small kernel sizes keep each run well
under a second.
"""

import json

import pytest

from repro.toolchain.cli import build_parser, main

#: Platforms the sampling subcommands are driven on (both can sample: the
#: X60 via the group-leader workaround, the i5 directly).
SAMPLING_PLATFORMS = ["SpacemiT X60", "Intel Core i5-1135G7"]
#: Platforms counting-mode subcommands are driven on (U74 cannot sample but
#: must still stat/identify).
ALL_PLATFORMS = SAMPLING_PLATFORMS + ["SiFive U74", "T-Head C910"]

FAST_SYNTHETIC = ["--workload", "micro-calltree", "--period", "2000"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestGlobalSubcommands:
    def test_capabilities(self, capsys):
        code, out, _ = run_cli(capsys, "capabilities")
        assert code == 0
        assert "SpacemiT X60" in out and "RVV version" in out

    def test_workloads(self, capsys):
        code, out, _ = run_cli(capsys, "workloads")
        assert code == 0
        assert "sqlite3-like" in out and "matmul-tiled" in out

    def test_unknown_platform_is_a_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "identify", "--platform", "ENIAC")
        assert code == 2
        assert "unknown platform" in err

    def test_unknown_workload_is_a_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "stat", "--workload", "nope")
        assert code == 2
        assert "unknown workload" in err


@pytest.mark.parametrize("platform", ALL_PLATFORMS)
class TestPerPlatformSmoke:
    """Every profiling subcommand across every modelled platform."""

    def test_identify(self, capsys, platform):
        code, out, _ = run_cli(capsys, "identify", "--platform", platform)
        assert code == 0
        assert "identified as" in out

    def test_stat(self, capsys, platform):
        code, out, _ = run_cli(capsys, "stat", "--platform", platform,
                               "--workload", "micro-calltree")
        assert code == 0
        assert "Performance counter stats" in out
        assert "cycles" in out

    def test_record(self, capsys, platform):
        code, out, err = run_cli(capsys, "record", "--platform", platform,
                                 *FAST_SYNTHETIC)
        if platform == "SiFive U74":
            assert code == 1
            assert "record failed" in err
        else:
            assert code == 0
            assert "Hotspots" in out and "hot_leaf" in out

    def test_flamegraph_text(self, capsys, platform):
        code, out, err = run_cli(capsys, "flamegraph", "--platform", platform,
                                 *FAST_SYNTHETIC)
        if platform == "SiFive U74":
            assert code == 1
        else:
            assert code == 0
            assert "hot_leaf" in out

    def test_roofline(self, capsys, platform):
        code, out, _ = run_cli(capsys, "roofline", "--platform", platform,
                               "--workload", "dot-product", "-n", "256")
        assert code == 0
        assert "GFLOP/s" in out


class TestFlagsAndExports:
    def test_stat_json(self, capsys):
        code, out, _ = run_cli(capsys, "stat", "--workload", "micro-calltree",
                               "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["workload"] == "micro-calltree"
        assert payload["stat"]["counts"]

    def test_record_json(self, capsys):
        code, out, _ = run_cli(capsys, "record", *FAST_SYNTHETIC, "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["recording"]["sample_count"] > 0
        assert payload["hotspots"]["rows"]

    def test_roofline_json(self, capsys):
        code, out, _ = run_cli(capsys, "roofline", "--workload", "dot-product",
                               "-n", "256", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["roofline"]["kernel_gflops"] > 0
        assert payload["roofline"]["loops"]

    def test_roofline_honours_no_vendor_driver(self, capsys, monkeypatch):
        """The satellite fix: the flag must reach every machine built."""
        seen = []
        from repro.platforms import machine as machine_module
        original = machine_module.Machine.__init__

        def spy(self, descriptor, vendor_driver=True):
            seen.append(vendor_driver)
            original(self, descriptor, vendor_driver=vendor_driver)

        monkeypatch.setattr(machine_module.Machine, "__init__", spy)
        code, out, _ = run_cli(capsys, "roofline", "--workload", "dot-product",
                               "-n", "128", "--no-vendor-driver")
        assert code == 0
        assert seen and all(flag is False for flag in seen)

    def test_roofline_rejects_synthetic_workload(self, capsys):
        code, _, err = run_cli(capsys, "roofline", "--workload", "micro-calltree")
        assert code == 1
        assert "roofline failed" in err

    def test_record_no_vendor_driver_on_x60_fails_cleanly(self, capsys):
        """Stock kernel on the X60: the workaround leader event is missing."""
        code, _, err = run_cli(capsys, "record", "--platform", "SpacemiT X60",
                               *FAST_SYNTHETIC, "--no-vendor-driver")
        assert code == 1
        assert "record failed" in err

    def test_flamegraph_svg_output(self, capsys, tmp_path):
        out_file = tmp_path / "flame.svg"
        code, out, _ = run_cli(capsys, "flamegraph", *FAST_SYNTHETIC,
                               "--output", str(out_file))
        assert code == 0
        assert out_file.read_text().startswith("<svg")

    def test_roofline_svg_output(self, capsys, tmp_path):
        out_file = tmp_path / "roof.svg"
        code, _, _ = run_cli(capsys, "roofline", "--workload", "dot-product",
                             "-n", "256", "--output", str(out_file))
        assert code == 0
        assert "<svg" in out_file.read_text()

    def test_scale_flag_forwarded_to_synthetic_factories(self, capsys):
        code, out, _ = run_cli(capsys, "stat", "--workload", "micro-calltree",
                               "--scale", "2", "--json")
        assert code == 0
        assert json.loads(out)["stat"]["counts"]


class TestCompareSubcommand:
    def test_compare_text_report(self, capsys):
        code, out, _ = run_cli(
            capsys, "compare", "--platforms", *SAMPLING_PLATFORMS,
            *FAST_SYNTHETIC)
        assert code == 0
        assert "comparison: micro-calltree" in out
        assert "flame-graph diff" in out

    def test_compare_json(self, capsys):
        code, out, _ = run_cli(
            capsys, "compare", "--platforms", *SAMPLING_PLATFORMS,
            *FAST_SYNTHETIC, "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["platforms"] == SAMPLING_PLATFORMS
        assert payload["flame_diffs"]["Intel Core i5-1135G7"]

    def test_compare_with_roofline_kernel(self, capsys):
        code, out, _ = run_cli(
            capsys, "compare", "--platforms", *SAMPLING_PLATFORMS,
            "--workload", "dot-product", "-n", "256", "--period", "1000",
            "--roofline")
        assert code == 0
        assert "Roofline" in out

    def test_compare_roofline_flag_warns_on_synthetic_workload(self, capsys):
        code, _, err = run_cli(
            capsys, "compare", "--platforms", *SAMPLING_PLATFORMS,
            *FAST_SYNTHETIC, "--roofline")
        assert code == 0
        assert "--roofline ignored" in err

    def test_compare_tolerates_unsampleable_platform(self, capsys):
        code, out, _ = run_cli(
            capsys, "compare", "--platforms", "SpacemiT X60", "SiFive U74",
            *FAST_SYNTHETIC)
        assert code == 0
        assert "unavailable" in out


class TestParser:
    def test_every_subcommand_registered(self):
        parser = build_parser()
        choices = parser._subparsers._group_actions[0].choices
        assert {"capabilities", "workloads", "identify", "stat", "record",
                "flamegraph", "roofline", "compare"} <= set(choices)
